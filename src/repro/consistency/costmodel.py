"""Analytic bandwidth model of the consistency protocol (Section 4.4.5).

"Assuming that a Byzantine agreement protocol like that in [10] is used,
the total cost of an update in bytes sent across the network, b, is given
by the equation:

    b = c1*n^2 + (u + c2)*n + c3

where u is the size of the update, n is the number of replicas in the
primary tier, and c1, c2, and c3 are the sizes of small protocol
messages.  While this equation appears to be dominated by the n^2 term,
the constant c1 is quite small, on the order of 100 bytes."

Figure 6 plots b normalized by the minimum (u*n) for (m,n) in
{(2,7), (3,10), (4,13)}.  The paper also estimates six message phases and
~100 ms per wide-area message, for < 1 s of commit latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostConstants:
    """Sizes of the small protocol messages, in bytes.

    Defaults follow the paper's "on the order of 100 bytes" for c1;
    c2 covers the per-replica request framing and c3 the client's
    final notification.
    """

    c1: float = 100.0
    c2: float = 100.0
    c3: float = 100.0


def replicas_for_faults(m: int) -> int:
    """n = 3m + 1: the Byzantine bound (footnote 8)."""
    if m < 1:
        raise ValueError(f"must tolerate at least one fault: m={m}")
    return 3 * m + 1


def update_cost_bytes(
    update_size: float, n: int, constants: CostConstants = CostConstants()
) -> float:
    """Total bytes across the network for one update: the paper's equation."""
    if update_size <= 0:
        raise ValueError(f"update size must be positive: {update_size}")
    if n < 2:
        raise ValueError(f"primary tier needs at least 2 replicas: {n}")
    return constants.c1 * n * n + (update_size + constants.c2) * n + constants.c3


def minimum_cost_bytes(update_size: float, n: int) -> float:
    """The floor: just delivering the update to all n replicas (u*n)."""
    return update_size * n


def normalized_cost(
    update_size: float, n: int, constants: CostConstants = CostConstants()
) -> float:
    """Figure 6's y-axis: protocol bytes over the minimum u*n."""
    return update_cost_bytes(update_size, n, constants) / minimum_cost_bytes(
        update_size, n
    )


def crossover_update_size(
    target_normalized_cost: float,
    n: int,
    constants: CostConstants = CostConstants(),
) -> float:
    """Update size at which the normalized cost reaches a target.

    Solving  (c1*n^2 + (u+c2)*n + c3) / (u*n) = t  for u:

        u = (c1*n^2 + c2*n + c3) / (n*(t - 1))

    Used to check the paper's reading of Figure 6: for n=13 the
    normalized cost "approaches 2 at update sizes of only around 4k
    bytes" and approaches 1 near 100 kB.
    """
    if target_normalized_cost <= 1.0:
        raise ValueError("normalized cost is always > 1; target must exceed 1")
    numerator = constants.c1 * n * n + constants.c2 * n + constants.c3
    return numerator / (n * (target_normalized_cost - 1.0))


#: The paper's six protocol phases (Section 4.4.5): client->primary,
#: pre-prepare, prepare, commit, reply/sign, dissemination push.
PROTOCOL_PHASES = 6


def latency_estimate_ms(per_message_ms: float = 100.0) -> float:
    """The paper's back-of-envelope: six phases at ~100 ms each."""
    return PROTOCOL_PHASES * per_message_ms
