"""Optimistic client timestamps and tentative ordering (Section 4.4.3).

"To increase the chances that this tentative order will match the final
ordering chosen by the primary replicas, clients optimistically timestamp
their updates.  Secondary replicas order tentative updates in timestamp
order, and the primary tier uses these same timestamps to guide its
ordering decisions."

Timestamps are (client clock ms, client GUID) pairs: the GUID breaks ties
deterministically so every replica derives the same tentative order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.data.update import Update


@dataclass(frozen=True, slots=True, order=True)
class OptimisticTimestamp:
    """Totally ordered: clock value first, then a tie-breaker."""

    clock_ms: float
    tiebreak: bytes

    @classmethod
    def for_update(cls, update: Update) -> "OptimisticTimestamp":
        return cls(clock_ms=update.timestamp, tiebreak=update.update_id)


def tentative_order(updates: Iterable[Update]) -> list[Update]:
    """The deterministic tentative serialization of a set of updates."""
    return sorted(updates, key=OptimisticTimestamp.for_update)


def order_agreement(tentative: list[Update], final: list[Update]) -> float:
    """Fraction of update pairs ordered identically in both serializations.

    1.0 means the tentative order matched the final commit order exactly;
    this is the metric for the Figure 5 experiment (how well optimistic
    timestamps predict the Byzantine tier's decisions).
    """
    common = [u.update_id for u in tentative if u.update_id in {f.update_id for f in final}]
    final_rank = {u.update_id: i for i, u in enumerate(final)}
    common = [uid for uid in common if uid in final_rank]
    if len(common) < 2:
        return 1.0
    agreements = 0
    total = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            total += 1
            if final_rank[common[i]] < final_rank[common[j]]:
                agreements += 1
    return agreements / total
