"""Byzantine agreement for the primary tier (Section 4.4.3).

"We replace this master replica with a primary tier of replicas.  These
replicas cooperate with one another in a Byzantine agreement protocol to
choose the final commit order for updates" -- with n = 3m + 1 replicas
tolerating m faults (footnote 8), in the style of Castro-Liskov PBFT [10].

This is a working implementation of PBFT's normal case (pre-prepare /
prepare / commit with in-order execution) plus a view change sufficient
to survive leader failure, running over the simulated network with
accurate byte accounting -- the measured counterpart of the Figure 6
analytic model.  Faulty replicas can be *silent* (crashed) or
*equivocating* (wrong digests, which honest replicas reject).

To allow "later, offline verification by a party who did not participate
in the protocol" the replicas each sign the serialization result; 2m+1
matching signature shares form a :class:`CommitCertificate` (the paper's
planned proactive-threshold-signature role, modelled with an aggregate of
individual signatures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.consistency.byzantine import (
    ByzantineStrategy,
    CorruptDigestStrategy,
    DelayedStrategy,
    EquivocatingStrategy,
    SilentStrategy,
)
from repro.crypto.hashes import sha256
from repro.crypto.keys import Principal
from repro.data.update import Update
from repro.sim.kernel import Kernel
from repro.sim.network import Message, Network, NodeId
from repro.telemetry import coalesce
from repro.util import serialization

#: Size in bytes of small protocol messages (the paper's c1 ~ 100 bytes).
SMALL_MESSAGE_BYTES = 100


class FaultMode(Enum):
    HONEST = "honest"
    SILENT = "silent"
    EQUIVOCATE = "equivocate"
    DELAY = "delay"
    CORRUPT = "corrupt"


def strategy_for(mode: FaultMode) -> ByzantineStrategy | None:
    """The adversarial behaviour a marked replica actually executes."""
    if mode is FaultMode.HONEST:
        return None
    if mode is FaultMode.SILENT:
        return SilentStrategy()
    if mode is FaultMode.EQUIVOCATE:
        return EquivocatingStrategy()
    if mode is FaultMode.DELAY:
        return DelayedStrategy()
    return CorruptDigestStrategy()


# -- wire messages -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ClientRequest:
    update: Update


@dataclass(frozen=True, slots=True)
class PrePrepare:
    """Leader's ordering proposal.

    Carries only digests: clients send the full update to every replica
    directly (Figure 5a), so re-shipping the body would double the
    large-update bandwidth floor -- the Figure 6 equation's (u+c2)*n
    term counts the body crossing the network once per replica.

    ``batch`` is the Castro-Liskov batching extension: an ordered tuple
    of member update digests sharing this agreement slot.  Empty means a
    classic single-update slot whose ``digest`` is the update digest
    itself (wire-identical to the unbatched protocol); non-empty means
    ``digest`` commits to the whole ordered membership via
    :func:`batch_digest`, so prepare/commit votes bind the composition,
    not just an opaque label.
    """

    view: int
    seq: int
    digest: bytes
    batch: tuple[bytes, ...] = ()


@dataclass(frozen=True, slots=True)
class PrepareMsg:
    view: int
    seq: int
    digest: bytes
    sender: int


@dataclass(frozen=True, slots=True)
class CommitMsg:
    view: int
    seq: int
    digest: bytes
    sender: int


@dataclass(frozen=True, slots=True)
class SignShare:
    """A replica's signature over the serialization result for one slot."""

    seq: int
    digest: bytes
    sender: int
    signature: bytes


@dataclass(frozen=True, slots=True)
class PreparedReport:
    """One slot the sender has *prepared* (quorum of prepares).

    Carried in view-change messages so the new leader preserves the
    numbering of any slot that could have executed anywhere -- PBFT's
    safety rule across views.
    """

    seq: int
    digest: bytes


@dataclass(frozen=True, slots=True)
class ViewChangeMsg:
    new_view: int
    sender: int
    prepared: tuple[PreparedReport, ...] = ()


@dataclass(frozen=True, slots=True)
class NewViewMsg:
    new_view: int


@dataclass(frozen=True, slots=True)
class BodyFetchRequest:
    """New leader asking peers for an update body it never received.

    A preserved slot's digest can be known (from prepared reports) while
    the request body is not -- the client's copy to this replica may
    have been lost.  The slot must keep its digest, so the leader
    fetches the body rather than repurposing the sequence number.
    """

    digest: bytes
    sender: int


@dataclass(frozen=True, slots=True)
class BodyFetchResponse:
    update: Update


@dataclass(frozen=True, slots=True)
class BatchBodyFetchResponse:
    """Body-fetch answer for a *batched* slot.

    Carries the ordered member bodies plus the slot digest they hash to,
    so the requester learns both the missing bodies and the composition
    (which it may never have seen if the batch pre-prepare was lost).
    """

    digest: bytes
    updates: tuple[Update, ...]


@dataclass(frozen=True, slots=True)
class CommitCertificate:
    """Proof that the primary tier serialized ``updates`` at slot ``seq``.

    Verifiable offline: check 2m+1 distinct valid signatures over
    (seq, digest) against the ring's known replica keys.  A batched slot
    carries its whole ordered membership; ``digest`` recomputes from the
    member digests, so a helper cannot splice bodies into a certificate.
    """

    seq: int
    digest: bytes
    updates: tuple[Update, ...]
    signatures: tuple[tuple[int, bytes], ...]

    @property
    def update(self) -> Update:
        """The sole member of a single-update slot (legacy accessor)."""
        return self.updates[0]

    @staticmethod
    def signed_payload(seq: int, digest: bytes) -> bytes:
        return serialization.encode({"type": "pbft-result", "seq": seq, "digest": digest})

    def verify(self, ring: "InnerRing") -> bool:
        if len({idx for idx, _ in self.signatures}) < ring.quorum:
            return False
        payload = self.signed_payload(self.seq, self.digest)
        for idx, sig in self.signatures:
            if not 0 <= idx < ring.n:
                return False
            if not ring.replicas[idx].principal.public_key.verify(payload, sig):
                return False
        return True


@dataclass(frozen=True, slots=True)
class CatchUpRequest:
    """A lagging replica asking peers for committed state it missed.

    A single laggard cannot force a view change (the other replicas are
    satisfied and will not vote), so after a timeout it asks for state
    transfer instead -- the role PBFT's checkpoint protocol plays.
    """

    sender: int
    last_executed_seq: int


@dataclass(frozen=True, slots=True)
class ExecutedClaim:
    """An executed slot whose certificate never finished assembling.

    Carries whatever sign shares the responder holds -- possibly fewer
    than the 2m+1 a :class:`CommitCertificate` needs, because under
    message loss the laggards themselves may be among the missing
    signers (a laggard cannot sign until it executes, and cannot catch
    up on certificates until enough replicas sign: a deadlock).  The
    requester verifies each share individually and adopts the slot once
    m+1 *distinct* replicas have validly signed (seq, digest): at least
    one signer is honest, and honest replicas sign only after a commit
    quorum, so no conflicting digest can gather m+1 honest-backed
    signatures at the same slot.  Batched slots claim their whole
    ordered membership, validated against the digest like certificates.
    """

    seq: int
    digest: bytes
    updates: tuple[Update, ...]
    signatures: tuple[tuple[int, bytes], ...]

    @property
    def update(self) -> Update:
        """The sole member of a single-update slot (legacy accessor)."""
        return self.updates[0]


@dataclass(frozen=True, slots=True)
class CatchUpResponse:
    """Committed slots above the requester's execution horizon.

    Updates travel as :class:`CommitCertificate` (threshold-signed, so
    a Byzantine helper cannot forge them) when one exists, or as an
    :class:`ExecutedClaim` adopted at m+1 verified signers otherwise;
    no-op gap fillers carry no signatures at all, so the requester only
    trusts a no-op claim confirmed by m+1 distinct helpers (at least
    one honest).
    """

    certificates: tuple[CommitCertificate, ...]
    noop_seqs: tuple[int, ...]
    sender: int
    claims: tuple[ExecutedClaim, ...] = ()


def update_digest(update: Update) -> bytes:
    return sha256(update.signed_bytes())


def batch_digest(member_digests: tuple[bytes, ...]) -> bytes:
    """Slot digest of a multi-update batch: binds order and membership."""
    return sha256(b"pbft-batch" + b"".join(member_digests))


def slot_digest_for(updates: tuple[Update, ...]) -> bytes:
    """The digest a slot carrying ``updates`` must advertise.

    Single-member slots keep the raw update digest (wire-compatible with
    the unbatched protocol); larger slots hash the ordered membership.
    """
    digests = tuple(update_digest(u) for u in updates)
    if len(digests) == 1:
        return digests[0]
    return batch_digest(digests)


#: Digest of the null request used to fill sequence gaps after a view
#: change (PBFT's no-op padding, so in-order execution never deadlocks
#: behind a slot nobody can complete).
NOOP_DIGEST = sha256(b"pbft-noop-request")

#: Wire-message type -> telemetry phase label.  With ``request`` (client
#: to all replicas) and the dissemination push this mirrors the
#: six-phase update flow of Section 4.4.5.
_PHASE_BY_TYPE: dict[type, str] = {
    PrePrepare: "pre_prepare",
    PrepareMsg: "prepare",
    CommitMsg: "commit",
    SignShare: "sign_share",
    ViewChangeMsg: "view_change",
    NewViewMsg: "new_view",
    BodyFetchRequest: "body_fetch",
    BodyFetchResponse: "body_fetch",
    BatchBodyFetchResponse: "body_fetch",
    CatchUpRequest: "catch_up",
    CatchUpResponse: "catch_up",
}


# -- replica -----------------------------------------------------------------


@dataclass
class _Instance:
    """Per-(view, seq) agreement state.

    ``early_prepares``/``early_commits`` buffer votes that arrive before
    the pre-prepare fixes the slot's digest (message reordering across
    partitions); they merge in once the digest is known.
    """

    digest: bytes | None = None
    #: ordered member bodies (None for a noop slot); a single-update
    #: slot is a one-element tuple
    updates: tuple[Update, ...] | None = None
    #: member update digests, () for noop slots; used to answer "is this
    #: request already riding some slot?" without rehashing bodies
    members: tuple[bytes, ...] = ()
    prepares: set[int] = field(default_factory=set)
    commits: set[int] = field(default_factory=set)
    committed: bool = False
    early_prepares: dict[bytes, set[int]] = field(default_factory=dict)
    early_commits: dict[bytes, set[int]] = field(default_factory=dict)


class PBFTReplica:
    """One primary-tier replica."""

    VIEW_TIMEOUT_MS = 3_000.0

    def __init__(
        self,
        index: int,
        network_id: NodeId,
        principal: Principal,
        ring: "InnerRing",
    ) -> None:
        self.index = index
        self.network_id = network_id
        self.principal = principal
        self.ring = ring
        self.fault_mode = FaultMode.HONEST
        #: adversarial behaviour executed when non-honest (None = honest)
        self.strategy: ByzantineStrategy | None = None
        self.view = 0
        self.next_seq = 0
        self.instances: dict[tuple[int, int], _Instance] = {}
        self.executed_updates: set[bytes] = set()
        #: seq -> digest actually executed there (agreement-safety audit)
        self.executed_by_seq: dict[int, bytes] = {}
        self.last_executed_seq = -1
        self.execution_queue: dict[int, tuple[bytes, tuple[Update, ...] | None]] = {}
        self.known_requests: dict[bytes, Update] = {}
        self.known_by_digest: dict[bytes, Update] = {}
        #: batch slot digest -> ordered member digests (composition of
        #: every batched slot this replica has seen proposed or proven)
        self.known_batches: dict[bytes, tuple[bytes, ...]] = {}
        #: pre-prepares that arrived before their client request(s),
        #: keyed by slot digest; batch slots wait for *all* member bodies
        self._deferred_pre_prepares: dict[bytes, PrePrepare] = {}
        #: leader-side batch buffer (requests waiting to be proposed)
        self._batch_queue: list[Update] = []
        self._queued_digests: set[bytes] = set()
        self._batch_timer: object | None = None
        self.sign_shares: dict[int, dict[int, bytes]] = {}
        self.certified_seqs: set[int] = set()
        #: seq -> assembled certificate, served to lagging peers
        self.certificates: dict[int, CommitCertificate] = {}
        #: seq -> helpers claiming the slot executed as a no-op
        self._noop_claims: dict[int, set[int]] = {}
        self._claim_signers: dict[tuple[int, bytes], set[int]] = {}
        #: view -> {sender -> that sender's prepared-slot reports}
        self.view_change_votes: dict[int, dict[int, tuple[PreparedReport, ...]]] = {}
        self._pending_timeouts: dict[bytes, object] = {}
        #: digest -> sequence slot reserved for it while the body is
        #: fetched from peers (view-change recovery of a lost request)
        self._awaiting_body: dict[bytes, int] = {}

    # -- helpers ---------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.ring.leader_index(self.view) == self.index

    def _instance(self, view: int, seq: int) -> _Instance:
        return self.instances.setdefault((view, seq), _Instance())

    def _broadcast(self, payload: object, size: int) -> None:
        if self.fault_mode is FaultMode.SILENT:
            return
        strategy = self.strategy
        phase = _PHASE_BY_TYPE[type(payload)]
        sent = 0
        for other in self.ring.replicas:
            if other.index == self.index:
                continue
            if strategy is None:
                self.ring.network.send(
                    self.network_id,
                    other.network_id,
                    payload,
                    size,
                    phase=phase,
                    subsystem="pbft",
                )
                sent += 1
                continue
            for wire_payload, delay_ms in strategy.outgoing(
                self, other.index, payload
            ):
                self._send_adversarial(
                    other.network_id, wire_payload, size, delay_ms, phase
                )
                sent += 1
        tel = self.ring.telemetry
        if tel.enabled and sent:
            tel.count("pbft_messages_total", sent, phase=phase)

    def _send_adversarial(
        self,
        dst: NodeId,
        payload: object,
        size: int,
        delay_ms: float,
        phase: str,
    ) -> None:
        if delay_ms <= 0:
            self.ring.network.send(
                self.network_id, dst, payload, size, phase=phase, subsystem="pbft"
            )
            return
        self.ring.kernel.call_after(
            delay_ms,
            lambda: self.ring.network.send(
                self.network_id, dst, payload, size, phase=phase, subsystem="pbft"
            ),
            label=f"pbft.delayed_send[{self.index}]",
        )

    # -- message handling ---------------------------------------------------------

    def handle(self, message: Message) -> None:
        payload = message.payload
        # Exact-type dispatch: the payload classes are flat (no protocol
        # message subclasses another), so one dict lookup replaces a
        # 12-branch isinstance chain on the hottest handler in the system
        # -- every message delivered to a ring node lands here first.
        # The SILENT check runs only on a dispatch hit, keeping the miss
        # path (heartbeat traffic crossing a ring node) to the lookup.
        handler = _PBFT_DISPATCH.get(type(payload))
        if handler is not None and self.fault_mode is not FaultMode.SILENT:
            handler(self, payload)

    # -- normal case ----------------------------------------------------------------

    def _on_request(self, update: Update) -> None:
        if update.update_id in self.executed_updates:
            return
        if not update.verify_signature():
            return  # replicas drop unauthenticated requests
        if self.ring.authorizer is not None and not self.ring.authorizer(update):
            return  # write not allowed by the object's ACL (Section 4.2)
        self.known_requests[update.update_id] = update
        digest = update_digest(update)
        self.known_by_digest[digest] = update
        deferred = self._deferred_pre_prepares.pop(digest, None)
        reserved = self._awaiting_body.pop(digest, None)
        # Every replica times the request -- including one that believes
        # it is the leader.  A view-desynced replica whose stale view
        # maps the leader role onto itself would otherwise propose into
        # the void and never fire the catch-up/view-change machinery
        # that is its only way back to the ring.
        self._arm_view_change_timer(update)
        if self.is_leader:
            if reserved is not None:
                # A view change reserved this slot for the digest; now
                # that the body is here, fill it at its original number.
                self._propose_batch_at(reserved, (update,))
            elif (
                not self._already_in_flight(digest)
                and digest not in self._queued_digests
                and not self._member_of_awaiting_batch(digest)
            ):
                self._enqueue_update(update)
        else:
            if deferred is not None:
                self._on_pre_prepare(deferred)
        # A newly-known body may complete a *batched* slot that is held
        # back on other digests: retry deferred batch pre-prepares and
        # (as leader) batch slots reserved by a view change.
        self._retry_deferred_batches()
        self._retry_awaiting_batches()

    def _already_in_flight(self, digest: bytes) -> bool:
        """True if some slot already carries this request (client retry),
        either as the whole slot or as one member of a batch."""
        return any(
            instance.digest == digest or digest in instance.members
            for instance in self.instances.values()
        )

    # -- leader-side batching ----------------------------------------------------

    def _in_flight_slots(self) -> int:
        """Slots this leader has proposed but not yet executed."""
        return self.next_seq - self.last_executed_seq - 1

    def _enqueue_update(self, update: Update) -> None:
        self._batch_queue.append(update)
        self._queued_digests.add(update_digest(update))
        self._maybe_flush_batch()

    def _maybe_flush_batch(self, force: bool = False) -> None:
        """Propose queued requests as batch slots.

        A batch seals when ``batch_size`` requests are waiting, when the
        ``batch_delay_ms`` timer expires on a partial batch (``force``),
        or immediately when no delay is configured.  The pipeline window
        bounds proposed-but-unexecuted slots: a closed window leaves the
        queue intact and :meth:`_execute_ready` drains it as rounds
        complete -- pipelining without unbounded in-flight state.
        """
        ring = self.ring
        if not self.is_leader:
            self._reset_batch_queue()
            return
        while self._batch_queue:
            if ring.pipeline_depth and self._in_flight_slots() >= ring.pipeline_depth:
                return  # window closed; execution reopens it
            if (
                not force
                and len(self._batch_queue) < ring.batch_size
                and ring.batch_delay_ms > 0
            ):
                self._arm_batch_timer()
                return
            members = tuple(self._batch_queue[: ring.batch_size])
            del self._batch_queue[: ring.batch_size]
            for member in members:
                self._queued_digests.discard(update_digest(member))
            seq = self.next_seq
            self.next_seq += 1
            self._propose_batch_at(seq, members)
        self._cancel_batch_timer()

    def _arm_batch_timer(self) -> None:
        if self._batch_timer is not None:
            return

        def flush() -> None:
            self._batch_timer = None
            self._maybe_flush_batch(force=True)

        self._batch_timer = self.ring.kernel.call_after(
            self.ring.batch_delay_ms, flush, label=f"pbft.batch_flush[{self.index}]"
        )

    def _cancel_batch_timer(self) -> None:
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None

    def _reset_batch_queue(self) -> None:
        """Drop the buffer (view change / leadership loss).  The bodies
        stay in ``known_requests``; the new leader's gap-fill step or a
        client retry re-proposes them."""
        self._batch_queue.clear()
        self._queued_digests.clear()
        self._cancel_batch_timer()

    def _updates_for_digest(self, digest: bytes) -> tuple[Update, ...] | None:
        """Resolve a slot digest to its ordered member bodies, if all
        are locally known; None while any body (or a batch's
        composition) is missing."""
        update = self.known_by_digest.get(digest)
        if update is not None:
            return (update,)
        members = self.known_batches.get(digest)
        if members is not None and all(d in self.known_by_digest for d in members):
            return tuple(self.known_by_digest[d] for d in members)
        return None

    def _register_slot_bodies(
        self, slot_digest: bytes, updates: tuple[Update, ...]
    ) -> None:
        """Learn a proven slot's bodies (and composition, if batched)."""
        digests = tuple(update_digest(u) for u in updates)
        for member_digest, update in zip(digests, updates):
            self.known_requests[update.update_id] = update
            self.known_by_digest[member_digest] = update
        if len(updates) > 1:
            self.known_batches[slot_digest] = digests

    def _member_of_awaiting_batch(self, digest: bytes) -> bool:
        """True if this request digest belongs to a batch slot reserved
        by a view change -- the reservation, not a fresh slot, must
        carry it once the remaining members arrive."""
        for slot_digest in self._awaiting_body:
            members = self.known_batches.get(slot_digest)
            if members is not None and digest in members:
                return True
        return False

    def _retry_deferred_batches(self) -> None:
        ready = [
            slot_digest
            for slot_digest, msg in self._deferred_pre_prepares.items()
            if msg.batch and all(d in self.known_by_digest for d in msg.batch)
        ]
        for slot_digest in ready:
            self._on_pre_prepare(self._deferred_pre_prepares.pop(slot_digest))

    def _retry_awaiting_batches(self) -> None:
        if not self._awaiting_body or not self.is_leader:
            return
        for slot_digest, seq in list(self._awaiting_body.items()):
            if slot_digest not in self.known_batches:
                continue
            updates = self._updates_for_digest(slot_digest)
            if updates is not None:
                del self._awaiting_body[slot_digest]
                self._propose_batch_at(seq, updates)

    def _propose_at(self, seq: int, update: Update) -> None:
        self._propose_batch_at(seq, (update,))

    def _propose_batch_at(self, seq: int, updates: tuple[Update, ...]) -> None:
        digests = tuple(update_digest(u) for u in updates)
        if len(digests) == 1:
            slot_digest: bytes = digests[0]
            batch: tuple[bytes, ...] = ()
        else:
            slot_digest = batch_digest(digests)
            batch = digests
            self.known_batches[slot_digest] = digests
        instance = self._instance(self.view, seq)
        instance.digest = slot_digest
        instance.updates = updates
        instance.members = digests
        instance.prepares.add(self.index)
        instance.prepares |= instance.early_prepares.pop(slot_digest, set())
        instance.commits |= instance.early_commits.pop(slot_digest, set())
        for member_digest, update in zip(digests, updates):
            self.known_by_digest[member_digest] = update
        tel = self.ring.telemetry
        if tel.enabled:
            tel.record(
                "pbft", "pre_prepare", view=self.view, seq=seq, leader=self.index
            )
            if self.ring.batching_enabled:
                # Batch boundary marker: which updates share this round.
                tel.record(
                    "pbft",
                    "batch_seal",
                    view=self.view,
                    seq=seq,
                    size=len(updates),
                    members=",".join(u.update_id[:4].hex() for u in updates),
                )
        size = SMALL_MESSAGE_BYTES + 32 * len(batch)
        with self.ring.telemetry.span("pbft.pre_prepare", seq=seq, leader=self.index):
            self._broadcast(
                PrePrepare(self.view, seq, slot_digest, batch), size=size
            )
        self._maybe_prepared(self.view, seq)

    def _propose_noop_at(self, seq: int) -> None:
        """Fill a sequence gap with a null request (view-change padding)."""
        instance = self._instance(self.view, seq)
        instance.digest = NOOP_DIGEST
        instance.updates = None
        instance.members = ()
        instance.prepares.add(self.index)
        instance.prepares |= instance.early_prepares.pop(NOOP_DIGEST, set())
        instance.commits |= instance.early_commits.pop(NOOP_DIGEST, set())
        self._broadcast(
            PrePrepare(self.view, seq, NOOP_DIGEST), size=SMALL_MESSAGE_BYTES
        )
        self._maybe_prepared(self.view, seq)

    def _on_pre_prepare(self, msg: PrePrepare) -> None:
        if msg.view != self.view:
            return
        updates: tuple[Update, ...] | None
        if msg.digest == NOOP_DIGEST:
            updates = None
        elif msg.batch:
            if batch_digest(msg.batch) != msg.digest:
                return  # membership does not hash to the slot digest
            # Record the composition even while bodies are missing: the
            # view-change and body-fetch paths need to know which member
            # digests a reserved batch slot stands for.
            self.known_batches[msg.digest] = msg.batch
            if any(d not in self.known_by_digest for d in msg.batch):
                # Some member bodies have not arrived yet; hold the
                # proposal until the client copies (or fetches) land.
                self._deferred_pre_prepares[msg.digest] = msg
                return
            updates = tuple(self.known_by_digest[d] for d in msg.batch)
        else:
            update = self.known_by_digest.get(msg.digest)
            if update is None:
                # The client's copy of the request has not arrived yet;
                # hold the proposal until it does.
                self._deferred_pre_prepares[msg.digest] = msg
                return
            updates = (update,)
        instance = self._instance(msg.view, msg.seq)
        if instance.digest is not None and instance.digest != msg.digest:
            return  # conflicting pre-prepare for the slot
        instance.digest = msg.digest
        instance.updates = updates
        instance.members = msg.batch if msg.batch else (
            () if updates is None else (msg.digest,)
        )
        for update in updates or ():
            if (
                update.update_id not in self.executed_updates
                and update.update_id not in self._pending_timeouts
            ):
                # The client's own broadcast may never arrive (lossy
                # links), making this pre-prepare the replica's only
                # sight of the request -- it must still drive catch-up /
                # view change if the slot stalls, so the progress timer
                # arms here too.
                self._arm_view_change_timer(update)
        instance.prepares.add(self.ring.leader_index(msg.view))
        instance.prepares.add(self.index)
        instance.prepares |= instance.early_prepares.pop(msg.digest, set())
        instance.commits |= instance.early_commits.pop(msg.digest, set())
        self._broadcast(
            PrepareMsg(msg.view, msg.seq, msg.digest, self.index),
            size=SMALL_MESSAGE_BYTES,
        )
        self._maybe_prepared(msg.view, msg.seq)
        self._maybe_committed(msg.view, msg.seq)

    def _on_prepare(self, msg: PrepareMsg) -> None:
        if msg.view != self.view:
            return
        instance = self._instance(msg.view, msg.seq)
        if instance.digest is None:
            # Pre-prepare not here yet (reordering); hold the vote.
            instance.early_prepares.setdefault(msg.digest, set()).add(msg.sender)
            return
        if msg.digest != instance.digest:
            return  # mismatched digest: ignore (equivocator)
        instance.prepares.add(msg.sender)
        self._maybe_prepared(msg.view, msg.seq)

    def _maybe_prepared(self, view: int, seq: int) -> None:
        instance = self._instance(view, seq)
        if instance.digest is None or instance.committed:
            return
        if len(instance.prepares) >= self.ring.quorum and self.index not in instance.commits:
            instance.commits.add(self.index)
            tel = self.ring.telemetry
            if tel.enabled:
                tel.record("pbft", "prepared", view=view, seq=seq, replica=self.index)
            self._broadcast(
                CommitMsg(view, seq, instance.digest, self.index),
                size=SMALL_MESSAGE_BYTES,
            )
            self._maybe_committed(view, seq)

    def _on_commit(self, msg: CommitMsg) -> None:
        if msg.view != self.view:
            return
        instance = self._instance(msg.view, msg.seq)
        if instance.digest is None:
            instance.early_commits.setdefault(msg.digest, set()).add(msg.sender)
            return
        if msg.digest != instance.digest:
            return
        instance.commits.add(msg.sender)
        self._maybe_committed(msg.view, msg.seq)

    def _maybe_committed(self, view: int, seq: int) -> None:
        instance = self._instance(view, seq)
        if instance.committed or instance.digest is None:
            return
        if len(instance.commits) < self.ring.quorum:
            return
        if len(instance.prepares) < self.ring.quorum:
            return
        instance.committed = True
        tel = self.ring.telemetry
        if tel.enabled:
            tel.record("pbft", "committed", view=view, seq=seq, replica=self.index)
        if instance.digest != NOOP_DIGEST:
            assert instance.updates is not None
        self.execution_queue[seq] = (instance.digest, instance.updates)
        self._execute_ready()

    def _execute_ready(self) -> None:
        while self.last_executed_seq + 1 in self.execution_queue:
            seq = self.last_executed_seq + 1
            digest, updates = self.execution_queue.pop(seq)
            self.last_executed_seq = seq
            self.executed_by_seq[seq] = digest
            if updates is None:
                continue  # no-op gap filler from a view change
            executed_any = False
            for update in updates:
                if update.update_id in self.executed_updates:
                    continue  # client retry already executed elsewhere
                self.executed_updates.add(update.update_id)
                self._cancel_view_change_timer(update.update_id)
                with self.ring.telemetry.span(
                    "pbft.execute", seq=seq, replica=self.index
                ):
                    self.ring._replica_executed(self, seq, update)
                executed_any = True
            if not executed_any:
                continue  # every member was a dup; nothing to attest
            # One signature attests the whole batch: the (seq, digest)
            # payload commits to the ordered membership, so the batched
            # sign-share phase stays one n^2 round per *slot*.
            share = SignShare(
                seq=seq,
                digest=digest,
                sender=self.index,
                signature=self.principal.sign(
                    CommitCertificate.signed_payload(seq, digest)
                ),
            )
            self.sign_shares.setdefault(seq, {})[self.index] = share.signature
            self._broadcast(share, size=SMALL_MESSAGE_BYTES)
            self._maybe_certified(seq, digest, updates)
        # Execution reopened the pipeline window; drain waiting requests.
        if self._batch_queue:
            self._maybe_flush_batch()

    def _on_sign_share(self, msg: SignShare) -> None:
        payload = CommitCertificate.signed_payload(msg.seq, msg.digest)
        sender = self.ring.replicas[msg.sender] if 0 <= msg.sender < self.ring.n else None
        if sender is None or not sender.principal.public_key.verify(payload, msg.signature):
            return
        self.sign_shares.setdefault(msg.seq, {})[msg.sender] = msg.signature
        instance_key = next(
            (
                (v, s)
                for (v, s), inst in self.instances.items()
                if s == msg.seq and inst.committed and inst.digest == msg.digest
            ),
            None,
        )
        if instance_key is not None:
            inst = self.instances[instance_key]
            assert inst.updates is not None
            self._maybe_certified(msg.seq, msg.digest, inst.updates)

    def _maybe_certified(
        self, seq: int, digest: bytes, updates: tuple[Update, ...]
    ) -> None:
        if seq in self.certified_seqs:
            return
        shares = self.sign_shares.get(seq, {})
        if len(shares) >= self.ring.quorum:
            self.certified_seqs.add(seq)
            certificate = CommitCertificate(
                seq=seq,
                digest=digest,
                updates=updates,
                signatures=tuple(sorted(shares.items())),
            )
            self.certificates[seq] = certificate
            tel = self.ring.telemetry
            if tel.enabled:
                tel.count("pbft_certificates_total")
                tel.record("pbft", "certified", seq=seq, replica=self.index)
            with tel.span("pbft.certify", seq=seq, replica=self.index):
                self.ring._replica_certified(self, certificate)

    # -- view change -------------------------------------------------------------------

    def _arm_view_change_timer(self, update: Update) -> None:
        update_id = update.update_id

        def check() -> None:
            self._pending_timeouts.pop(update_id, None)
            if update_id in self.executed_updates:
                return
            # A lone laggard cannot force a view change (the others are
            # satisfied and will not vote), so first ask peers for
            # committed state this replica may simply have missed --
            # the role PBFT's checkpoint/state-transfer protocol plays.
            self._broadcast(
                CatchUpRequest(self.index, self.last_executed_seq),
                size=SMALL_MESSAGE_BYTES,
            )
            # Escalate past any view we already voted for: if an earlier
            # vote assembled a view whose NEW-VIEW announcement was lost
            # in transit, re-voting for that same view would be a no-op
            # and the replica would stall in its old view forever.
            voted = [
                view
                for view, votes in self.view_change_votes.items()
                if self.index in votes
            ]
            self._send_view_change(max([self.view, *voted]) + 1)
            if update_id in self.executed_updates:
                return
            # Re-arm: under message loss both the catch-up and the view
            # change can vanish in transit, and this timer is the only
            # local driver left once the client has its quorum ack.
            self._pending_timeouts[update_id] = self.ring.kernel.call_after(
                self.VIEW_TIMEOUT_MS, check
            )

        old = self._pending_timeouts.pop(update_id, None)
        if old is not None:
            old.cancel()
        handle = self.ring.kernel.call_after(self.VIEW_TIMEOUT_MS, check)
        self._pending_timeouts[update_id] = handle

    def _cancel_view_change_timer(self, update_id: bytes) -> None:
        handle = self._pending_timeouts.pop(update_id, None)
        if handle is not None:
            handle.cancel()

    def _prepared_reports(self) -> tuple[PreparedReport, ...]:
        """Every slot this replica has prepared, *including executed ones*.

        Any slot that could have executed anywhere was committed at a
        quorum, hence prepared at a quorum, hence appears in at least one
        honest replica's report within any view-change quorum -- so the
        new leader preserving all reported slots preserves every
        possibly-executed slot (PBFT's cross-view safety argument).

        Locally-executed slots must stay in the report: the executors in
        the view-change quorum may be the *only* members that prepared a
        committed slot, and omitting it would let the new leader reuse
        its sequence number for a different update (divergent execution).
        Real PBFT trims reports at the stable checkpoint, which requires
        2m+1 checkpoint proofs; this implementation has no checkpointing,
        so reports cover the full history.
        """
        reports = {}
        for (view, seq), instance in self.instances.items():
            if instance.digest is None:
                continue
            if len(instance.prepares) >= self.ring.quorum:
                existing = reports.get(seq)
                if existing is None or view > existing[0]:
                    reports[seq] = (view, instance.digest)
        return tuple(
            PreparedReport(seq=seq, digest=digest)
            for seq, (_, digest) in sorted(reports.items())
        )

    def _send_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(new_view, {})
        if self.index in votes:
            # Already voted: retransmit (the first broadcast may have
            # been lost on a faulty link); receivers dedupe by sender.
            self._broadcast(
                ViewChangeMsg(new_view, self.index, votes[self.index]),
                size=SMALL_MESSAGE_BYTES + 40 * len(votes[self.index]),
            )
            self._maybe_enter_view(new_view)
            return
        reports = self._prepared_reports()
        votes[self.index] = reports
        tel = self.ring.telemetry
        if tel.enabled:
            tel.count("pbft_view_changes_total", replica=self.index)
            tel.record(
                "pbft", "view_change", new_view=new_view, replica=self.index
            )
        self._broadcast(
            ViewChangeMsg(new_view, self.index, reports),
            size=SMALL_MESSAGE_BYTES + 40 * len(reports),
        )
        self._maybe_enter_view(new_view)

    def _on_view_change(self, msg: ViewChangeMsg) -> None:
        if msg.new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(msg.new_view, {})
        votes[msg.sender] = msg.prepared
        # Joining the view change once f+1 others demand it (standard
        # PBFT liveness rule) avoids waiting for our own timeout.
        if len(votes) > self.ring.m and self.index not in votes:
            self._send_view_change(msg.new_view)
        self._maybe_enter_view(msg.new_view)

    def _maybe_enter_view(self, new_view: int) -> None:
        votes = self.view_change_votes.get(new_view, {})
        if len(votes) < self.ring.quorum:
            return
        if self.ring.leader_index(new_view) != self.index:
            return
        if self.view >= new_view:
            return
        self.view = new_view
        self._reset_batch_queue()
        tel = self.ring.telemetry
        if tel.enabled:
            tel.record("pbft", "new_view", view=new_view, leader=self.index)
        self._broadcast(NewViewMsg(new_view), size=SMALL_MESSAGE_BYTES)

        # 1. Preserve every prepared slot reported by the quorum, at its
        #    original sequence number.  Slots this leader already
        #    executed keep the digest it executed (committed at a quorum,
        #    so authoritative over any conflicting prepared report).
        preserved: dict[int, bytes] = dict(self.executed_by_seq)
        for reports in votes.values():
            for report in reports:
                if report.seq in self.executed_by_seq:
                    continue
                # Prefer a digest whose update bodies we actually hold.
                if (
                    report.seq not in preserved
                    or self._updates_for_digest(preserved[report.seq]) is None
                ):
                    preserved[report.seq] = report.digest
        proposed_digests: set[bytes] = set()
        used_seqs: set[int] = set()
        self._awaiting_body.clear()
        for seq in sorted(preserved):
            if preserved[seq] == NOOP_DIGEST:
                self._propose_noop_at(seq)
                used_seqs.add(seq)
                continue
            updates = self._updates_for_digest(preserved[seq])
            if updates is None:
                # The digest is committed to this slot but a body (or a
                # batch's composition) was lost en route here.  Reserve
                # the number (padding must NOT reuse it -- that
                # re-executes the slot divergently) and fetch from
                # peers; client retries also satisfy the reservation.
                self._awaiting_body[preserved[seq]] = seq
                used_seqs.add(seq)
                self._broadcast(
                    BodyFetchRequest(preserved[seq], self.index),
                    size=SMALL_MESSAGE_BYTES,
                )
                continue
            self._propose_batch_at(seq, updates)
            proposed_digests.add(preserved[seq])
            proposed_digests.update(update_digest(u) for u in updates)
            used_seqs.add(seq)
        # Members of reserved batch slots with known composition must not
        # be re-proposed as fresh singles below -- the reservation owns
        # them (executing them twice is safe but wasteful).
        for slot_digest in self._awaiting_body:
            members = self.known_batches.get(slot_digest)
            if members is not None:
                proposed_digests.update(members)

        # 2. Fill remaining gaps with known-but-unexecuted requests not
        #    already covered by a preserved slot.
        pending = sorted(
            (
                u
                for u in self.known_requests.values()
                if u.update_id not in self.executed_updates
                and update_digest(u) not in proposed_digests
            ),
            key=lambda u: (u.timestamp, u.update_id),
        )
        seq = self.last_executed_seq + 1
        for update in pending:
            while seq in used_seqs:
                seq += 1
            self._propose_at(seq, update)
            used_seqs.add(seq)
            seq += 1

        # 3. Pad any remaining holes below the highest proposed slot with
        #    null requests so in-order execution cannot deadlock.
        if used_seqs:
            for gap in range(self.last_executed_seq + 1, max(used_seqs)):
                if gap not in used_seqs:
                    self._propose_noop_at(gap)
                    used_seqs.add(gap)
        self.next_seq = max(used_seqs, default=self.last_executed_seq) + 1

    def _on_new_view(self, msg: NewViewMsg) -> None:
        if msg.new_view > self.view:
            self.view = msg.new_view
            # Leadership (if this replica believed it held it) is gone;
            # queued-but-unproposed requests fall back to the new
            # leader's gap-fill step or client retries.
            self._reset_batch_queue()

    def _on_body_fetch(self, msg: BodyFetchRequest) -> None:
        if not 0 <= msg.sender < self.ring.n:
            return
        update = self.known_by_digest.get(msg.digest)
        if update is not None:
            self.ring.network.send(
                self.network_id,
                self.ring.replicas[msg.sender].network_id,
                BodyFetchResponse(update),
                size_bytes=update.size_bytes() + SMALL_MESSAGE_BYTES,
                phase="body_fetch",
                subsystem="pbft",
            )
            return
        # A batch slot digest: answer with whatever full membership this
        # replica holds (a replica that prepared the batch has it all).
        updates = self._updates_for_digest(msg.digest)
        if updates is None:
            return
        self.ring.network.send(
            self.network_id,
            self.ring.replicas[msg.sender].network_id,
            BatchBodyFetchResponse(msg.digest, updates),
            size_bytes=sum(u.size_bytes() for u in updates) + SMALL_MESSAGE_BYTES,
            phase="body_fetch",
            subsystem="pbft",
        )

    def _on_batch_body_fetch_response(self, msg: BatchBodyFetchResponse) -> None:
        if len(msg.updates) < 2:
            return
        digests = tuple(update_digest(u) for u in msg.updates)
        if batch_digest(digests) != msg.digest:
            return  # bodies do not hash to the requested slot digest
        self.known_batches[msg.digest] = digests
        # Register each member through the request path: it dedupes,
        # verifies signatures, arms progress timers, and (via the retry
        # hooks) completes any reservation or deferred pre-prepare that
        # was waiting on these bodies.
        for update in msg.updates:
            self._on_request(update)

    # -- state transfer (laggard catch-up) ---------------------------------------------

    def _on_catch_up_request(self, msg: CatchUpRequest) -> None:
        if not 0 <= msg.sender < self.ring.n or msg.sender == self.index:
            return
        certificates = tuple(
            cert
            for seq, cert in sorted(self.certificates.items())
            if seq > msg.last_executed_seq
        )
        noop_seqs = tuple(
            seq
            for seq, digest in sorted(self.executed_by_seq.items())
            if seq > msg.last_executed_seq and digest == NOOP_DIGEST
        )
        # Slots this replica executed but never certified mean the
        # post-execution sign shares were lost in transit (shares are
        # fire-and-forget, and the laggards themselves may be missing
        # signers).  Two remedies: re-broadcast our own share so every
        # committed replica can finish assembling a certificate, and
        # attach the shares we *do* hold as an ExecutedClaim the
        # requester can adopt at m+1 verified signers.
        claims = []
        for seq, digest in sorted(self.executed_by_seq.items()):
            if seq <= msg.last_executed_seq or seq in self.certificates:
                continue
            if digest == NOOP_DIGEST:
                continue
            signature = self.sign_shares.get(seq, {}).get(self.index)
            if signature is None:
                continue
            self._broadcast(
                SignShare(
                    seq=seq,
                    digest=digest,
                    sender=self.index,
                    signature=signature,
                ),
                size=SMALL_MESSAGE_BYTES,
            )
            updates = self._updates_for_digest(digest)
            if updates is not None:
                claims.append(
                    ExecutedClaim(
                        seq=seq,
                        digest=digest,
                        updates=updates,
                        signatures=tuple(
                            sorted(self.sign_shares.get(seq, {}).items())
                        ),
                    )
                )
        if not certificates and not noop_seqs and not claims:
            return
        size = SMALL_MESSAGE_BYTES + sum(
            sum(u.size_bytes() for u in cert.updates) + SMALL_MESSAGE_BYTES
            for cert in certificates
        ) + sum(
            sum(u.size_bytes() for u in claim.updates) + SMALL_MESSAGE_BYTES
            for claim in claims
        )
        self.ring.network.send(
            self.network_id,
            self.ring.replicas[msg.sender].network_id,
            CatchUpResponse(certificates, noop_seqs, self.index, tuple(claims)),
            size_bytes=size,
            phase="catch_up",
            subsystem="pbft",
        )

    def _on_catch_up_response(self, msg: CatchUpResponse) -> None:
        progressed = False
        for cert in msg.certificates:
            if cert.seq <= self.last_executed_seq:
                continue
            if cert.digest == NOOP_DIGEST:
                continue  # no-ops never certify; reject the forgery
            if not cert.updates or slot_digest_for(cert.updates) != cert.digest:
                continue  # valid certificate paired with the wrong bodies
            if not cert.verify(self.ring):
                continue
            self._register_slot_bodies(cert.digest, cert.updates)
            self.certificates.setdefault(cert.seq, cert)
            self.sign_shares.setdefault(cert.seq, {}).update(dict(cert.signatures))
            self.execution_queue[cert.seq] = (cert.digest, cert.updates)
            progressed = True
        for claim in msg.claims:
            if claim.seq <= self.last_executed_seq:
                continue
            if claim.seq in self.execution_queue:
                continue
            if claim.digest == NOOP_DIGEST:
                continue
            if not claim.updates or slot_digest_for(claim.updates) != claim.digest:
                continue  # claimed bodies do not match the signed digest
            payload = CommitCertificate.signed_payload(claim.seq, claim.digest)
            signers = self._claim_signers.setdefault(
                (claim.seq, claim.digest), set()
            )
            for idx, sig in claim.signatures:
                if not 0 <= idx < self.ring.n or idx in signers:
                    continue
                if self.ring.replicas[idx].principal.public_key.verify(
                    payload, sig
                ):
                    signers.add(idx)
                    self.sign_shares.setdefault(claim.seq, {})[idx] = sig
            # m+1 distinct verified signers guarantee an honest executor,
            # and honest replicas sign only post-commit-quorum, so no
            # rival digest can ever reach the same bar at this slot.
            if len(signers) > self.ring.m:
                self._register_slot_bodies(claim.digest, claim.updates)
                self.execution_queue[claim.seq] = (claim.digest, claim.updates)
                progressed = True
        for seq in msg.noop_seqs:
            if seq <= self.last_executed_seq or seq in self.execution_queue:
                continue
            claims = self._noop_claims.setdefault(seq, set())
            claims.add(msg.sender)
            # m+1 distinct claimants guarantee at least one honest
            # witness; fewer could be a coordinated Byzantine lie.
            if len(claims) > self.ring.m:
                self.execution_queue[seq] = (NOOP_DIGEST, None)
                progressed = True
        if progressed:
            self._execute_ready()


#: payload type -> bound handler for :meth:`PBFTReplica.handle`; built
#: once after the class body so the hot path is a single dict lookup.
#: ``Corrupted`` (and any unknown type) is absent and falls through,
#: exactly as the isinstance chain ignored it.
_PBFT_DISPATCH: dict[type, Callable[[PBFTReplica, Any], None]] = {
    ClientRequest: lambda replica, p: replica._on_request(p.update),
    PrePrepare: PBFTReplica._on_pre_prepare,
    PrepareMsg: PBFTReplica._on_prepare,
    CommitMsg: PBFTReplica._on_commit,
    SignShare: PBFTReplica._on_sign_share,
    ViewChangeMsg: PBFTReplica._on_view_change,
    NewViewMsg: PBFTReplica._on_new_view,
    BodyFetchRequest: PBFTReplica._on_body_fetch,
    BodyFetchResponse: lambda replica, p: replica._on_request(p.update),
    BatchBodyFetchResponse: PBFTReplica._on_batch_body_fetch_response,
    CatchUpRequest: PBFTReplica._on_catch_up_request,
    CatchUpResponse: PBFTReplica._on_catch_up_response,
}


# -- the ring ------------------------------------------------------------------


class InnerRing:
    """The primary tier: n = 3m + 1 replicas plus client-facing API.

    "The primary tier thus consists of a small number of replicas located
    in high-bandwidth, high-connectivity regions of the network."
    """

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        replica_nodes: list[NodeId],
        principals: list[Principal],
        m: int,
        telemetry=None,
        allow_unsafe_size: bool = False,
        batch_size: int = 1,
        batch_delay_ms: float = 0.0,
        pipeline_depth: int = 0,
        subscribe_handlers: bool = False,
    ) -> None:
        if len(replica_nodes) != 3 * m + 1 and not allow_unsafe_size:
            raise ValueError(
                f"PBFT needs n = 3m+1 replicas: m={m} needs {3 * m + 1}, "
                f"got {len(replica_nodes)}"
            )
        if allow_unsafe_size and len(replica_nodes) < 2 * m + 1:
            raise ValueError(
                f"even an unsafe ring needs a quorum's worth of replicas: "
                f"m={m} needs >= {2 * m + 1}, got {len(replica_nodes)}"
            )
        if len(principals) != len(replica_nodes):
            raise ValueError("one principal per replica required")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        if batch_delay_ms < 0:
            raise ValueError(f"batch_delay_ms must be >= 0: {batch_delay_ms}")
        if pipeline_depth < 0:
            raise ValueError(f"pipeline_depth must be >= 0: {pipeline_depth}")
        self.kernel = kernel
        self.network = network
        self.telemetry = coalesce(telemetry)
        self.m = m
        #: updates per agreement round (1 = classic PBFT, wire-identical)
        self.batch_size = batch_size
        #: how long the leader holds a partial batch before sealing it
        self.batch_delay_ms = batch_delay_ms
        #: max proposed-but-unexecuted rounds in flight (0 = unbounded)
        self.pipeline_depth = pipeline_depth
        self.replicas = [
            PBFTReplica(i, node, principal, self)
            for i, (node, principal) in enumerate(zip(replica_nodes, principals))
        ]
        for replica in self.replicas:
            if subscribe_handlers:
                # A ring installed mid-run (membership handoff) must not
                # clobber handlers other subsystems -- failure detector,
                # dissemination tier -- already hold on these nodes.
                network.subscribe(replica.network_id, replica.handle)
            else:
                network.register(replica.network_id, replica.handle)
        #: optional ACL check every honest replica runs on client requests
        self.authorizer: Callable[[Update], bool] | None = None
        self._execute_callbacks: list[Callable[[PBFTReplica, int, Update], None]] = []
        self._certificate_callbacks: list[Callable[[CommitCertificate], None]] = []
        self._certified_seqs: set[int] = set()
        self.committed_order: list[Update] = []
        self._order_recorded: set[bytes] = set()

    @property
    def n(self) -> int:
        return len(self.replicas)

    @property
    def quorum(self) -> int:
        """2m + 1: intersection quorum for n = 3m + 1."""
        return 2 * self.m + 1

    @property
    def batching_enabled(self) -> bool:
        """True when rounds can carry more than one update."""
        return self.batch_size > 1

    @property
    def max_tolerable_faults(self) -> int:
        """How many Byzantine replicas this ring size can actually absorb.

        (n-1)//3 -- equals ``m`` only when n = 3m+1.  An undersized ring
        (built with ``allow_unsafe_size``) reports fewer, which is how
        the chaos invariant checker detects a violated quorum condition.
        """
        return (self.n - 1) // 3

    def leader_index(self, view: int) -> int:
        return view % self.n

    # -- client API ------------------------------------------------------------

    def submit(self, client_node: NodeId, update: Update) -> None:
        """Client sends the update directly to the primary tier
        (Figure 5a): every replica receives the full request."""
        tel = self.telemetry
        with tel.span("pbft.request", client=client_node):
            for replica in self.replicas:
                self.network.send(
                    client_node,
                    replica.network_id,
                    ClientRequest(update),
                    size_bytes=update.size_bytes() + SMALL_MESSAGE_BYTES,
                    phase="request",
                    subsystem="pbft",
                )
        if tel.enabled:
            tel.count("pbft_messages_total", len(self.replicas), phase="request")

    # -- callbacks ------------------------------------------------------------------

    def on_execute(self, callback: Callable[[PBFTReplica, int, Update], None]) -> None:
        """Fires once per replica per executed slot."""
        self._execute_callbacks.append(callback)

    def on_certificate(self, callback: Callable[[CommitCertificate], None]) -> None:
        """Fires once per slot, when the first certificate assembles."""
        self._certificate_callbacks.append(callback)

    def _replica_executed(self, replica: PBFTReplica, seq: int, update: Update) -> None:
        if update.update_id not in self._order_recorded:
            self._order_recorded.add(update.update_id)
            self.committed_order.append(update)
        for cb in self._execute_callbacks:
            cb(replica, seq, update)

    def _replica_certified(
        self, replica: PBFTReplica, certificate: CommitCertificate
    ) -> None:
        if certificate.seq in self._certified_seqs:
            return
        self._certified_seqs.add(certificate.seq)
        for cb in self._certificate_callbacks:
            cb(certificate)

    # -- fault injection ------------------------------------------------------------

    def set_fault(
        self,
        replica_index: int,
        mode: FaultMode,
        strategy: ByzantineStrategy | None = None,
    ) -> None:
        """Make a replica misbehave: ``mode`` picks a stock strategy from
        :mod:`repro.consistency.byzantine`, or pass a custom one."""
        replica = self.replicas[replica_index]
        replica.fault_mode = mode
        replica.strategy = strategy if strategy is not None else strategy_for(mode)

    def faulty_count(self) -> int:
        return sum(1 for r in self.replicas if r.fault_mode is not FaultMode.HONEST)
