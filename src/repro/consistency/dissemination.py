"""Dissemination trees (Section 4.4.3, Figure 5c).

Secondary replicas "are organized into one or more application-level
multicast trees, called dissemination trees, that serve as conduits of
information between the primary tier and secondary tier ... the
dissemination trees push a stream of committed updates to the secondary
replicas, and they serve as communication paths along which secondary
replicas pull missing information from parents and primary replicas.
This architecture permits dissemination trees to transform updates into
invalidations as they progress downward; such a transformation is
exploited at the leaves of the network where bandwidth is limited."

The tree is built greedily by latency: members attach to the closest
already-attached node with spare fanout, which keeps subtrees regional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.network import Network, NodeId
from repro.telemetry import coalesce


class TreeError(RuntimeError):
    pass


@dataclass
class DisseminationTree:
    """Latency-aware multicast tree rooted at the primary tier's contact."""

    network: Network
    root: NodeId
    max_fanout: int = 4
    telemetry: object = None
    _children: dict[NodeId, list[NodeId]] = field(default_factory=dict)
    _parent: dict[NodeId, NodeId] = field(default_factory=dict)
    #: members flagged as bandwidth-limited leaves: they receive
    #: invalidations instead of full updates.
    low_bandwidth: set[NodeId] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.max_fanout < 1:
            raise TreeError("max_fanout must be >= 1")
        self.telemetry = coalesce(self.telemetry)
        self._children.setdefault(self.root, [])

    # -- membership ---------------------------------------------------------

    @property
    def members(self) -> list[NodeId]:
        return list(self._children)

    def add_member(self, node: NodeId) -> NodeId:
        """Attach ``node`` to the closest member with spare fanout;
        returns the chosen parent."""
        if node in self._children:
            raise TreeError(f"{node} already in tree")
        candidates = [
            member
            for member, kids in self._children.items()
            if len(kids) < self.max_fanout
        ]
        if not candidates:
            raise TreeError("tree full at current fanout")
        parent = min(
            candidates,
            key=lambda member: (self.network.latency_ms(node, member), member),
        )
        self._children[parent].append(node)
        self._children[node] = []
        self._parent[node] = parent
        return parent

    def remove_member(
        self,
        node: NodeId,
        candidate_filter: "Callable[[NodeId], bool] | None" = None,
    ) -> dict[NodeId, NodeId]:
        """Detach a member; orphaned subtrees re-attach greedily.

        The departed node's low-bandwidth flag is cleared, so a node
        that later rejoins does not inherit a stale degraded edge.
        ``candidate_filter`` optionally restricts which members may
        adopt orphans (recovery passes a liveness check so a crashed
        parent's children never reattach under another dead node); the
        root is always eligible so repair cannot strand an orphan.
        Returns the ``orphan -> new parent`` mapping.
        """
        if node == self.root:
            raise TreeError("cannot remove the root")
        if node not in self._children:
            raise TreeError(f"{node} not in tree")
        orphans = self._children.pop(node)
        parent = self._parent.pop(node)
        self._children[parent].remove(node)
        self.low_bandwidth.discard(node)
        reparented: dict[NodeId, NodeId] = {}
        for orphan in orphans:
            subtree = self._subtree(orphan)
            candidates = [
                member
                for member, kids in self._children.items()
                if len(kids) < self.max_fanout
                and member not in subtree
                and (
                    candidate_filter is None
                    or member == self.root
                    or candidate_filter(member)
                )
            ]
            if not candidates:
                raise TreeError("tree full while re-attaching orphans")
            new_parent = min(
                candidates,
                key=lambda member: (self.network.latency_ms(orphan, member), member),
            )
            self._children[new_parent].append(orphan)
            self._parent[orphan] = new_parent
            reparented[orphan] = new_parent
        return reparented

    def repoint_root(self, new_root: NodeId) -> None:
        """Relabel the root: the tree now hangs off a new primary contact.

        Used by ring-membership handoff when the shard's old contact is
        gone.  The new contact must not already be a tree member (ring
        nodes are never secondaries), so this is a pure relabel -- every
        subtree keeps its shape.
        """
        if new_root == self.root:
            return
        if new_root in self._children:
            raise TreeError(f"{new_root} is already a tree member")
        self._children[new_root] = self._children.pop(self.root)
        for child in self._children[new_root]:
            self._parent[child] = new_root
        self.root = new_root

    def _subtree(self, node: NodeId) -> set[NodeId]:
        result = {node}
        stack = [node]
        while stack:
            for child in self._children.get(stack.pop(), []):
                result.add(child)
                stack.append(child)
        return result

    def children(self, node: NodeId) -> list[NodeId]:
        return list(self._children.get(node, []))

    def parent(self, node: NodeId) -> NodeId | None:
        return self._parent.get(node)

    def depth(self, node: NodeId) -> int:
        depth = 0
        current = node
        while current != self.root:
            current = self._parent[current]
            depth += 1
        return depth

    def mark_low_bandwidth(self, node: NodeId) -> None:
        if node not in self._children:
            raise TreeError(f"{node} not in tree")
        self.low_bandwidth.add(node)

    # -- multicast ----------------------------------------------------------------

    def send_to_children(
        self,
        node: NodeId,
        payload: object,
        size_bytes: int,
        small_payload: object | None = None,
        small_size_bytes: int = 100,
    ) -> None:
        """Forward one hop down the tree from ``node``.

        Multicast is hop-by-hop: the root calls this once, and each
        member calls it again when the message *arrives* (so latency
        accumulates down the tree, as in a real overlay).  If
        ``small_payload`` is given, low-bandwidth children receive it
        instead of the full payload -- the update-to-invalidation
        transformation at bandwidth-limited edges.
        """
        tel = self.telemetry
        for child in self._children.get(node, []):
            degrade = small_payload is not None and child in self.low_bandwidth
            child_payload = small_payload if degrade else payload
            child_size = small_size_bytes if degrade else size_bytes
            if tel.enabled:
                tel.count(
                    "dissemination_messages_total",
                    kind="invalidation" if degrade else "update",
                )
                tel.record(
                    "dissem",
                    "push",
                    parent=node,
                    child=child,
                    payload="invalidation" if degrade else "update",
                    bytes=child_size,
                )
            self.network.send(
                node,
                child,
                child_payload,
                child_size,
                phase="invalidation" if degrade else "push",
                subsystem="dissemination",
            )
