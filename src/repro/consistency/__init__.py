"""Consistency management in an untrusted infrastructure (Section 4.4).

The primary tier serializes updates with Byzantine agreement
(:mod:`~repro.consistency.pbft`); the secondary tier spreads tentative
updates epidemically and receives committed results down dissemination
trees (:mod:`~repro.consistency.secondary`,
:mod:`~repro.consistency.dissemination`).  Optimistic timestamps order
tentative state (:mod:`~repro.consistency.timestamps`), and
:mod:`~repro.consistency.costmodel` is the analytic bandwidth model of
Figure 6.
"""

from repro.consistency.costmodel import (
    PROTOCOL_PHASES,
    CostConstants,
    CostModelFit,
    crossover_update_size,
    fit_cost_model,
    latency_estimate_ms,
    minimum_cost_bytes,
    normalized_cost,
    replicas_for_faults,
    update_cost_bytes,
)
from repro.consistency.measure import (
    TrafficMeasurement,
    measure_sweep,
    measure_update_traffic,
)
from repro.consistency.byzantine import (
    ByzantineStrategy,
    CorruptDigestStrategy,
    DelayedStrategy,
    EquivocatingStrategy,
    SilentStrategy,
)
from repro.consistency.dissemination import DisseminationTree, TreeError
from repro.consistency.pbft import (
    SMALL_MESSAGE_BYTES,
    ClientRequest,
    CommitCertificate,
    FaultMode,
    InnerRing,
    PBFTReplica,
    strategy_for,
    update_digest,
)
from repro.consistency.secondary import (
    AntiEntropyRequest,
    CommittedPush,
    Invalidation,
    SecondaryReplica,
    SecondaryTier,
    TentativeGossip,
)
from repro.consistency.timestamps import (
    OptimisticTimestamp,
    order_agreement,
    tentative_order,
)

__all__ = [
    "AntiEntropyRequest",
    "ByzantineStrategy",
    "ClientRequest",
    "CommitCertificate",
    "CommittedPush",
    "CorruptDigestStrategy",
    "CostConstants",
    "CostModelFit",
    "DelayedStrategy",
    "DisseminationTree",
    "EquivocatingStrategy",
    "FaultMode",
    "InnerRing",
    "Invalidation",
    "OptimisticTimestamp",
    "PBFTReplica",
    "PROTOCOL_PHASES",
    "SMALL_MESSAGE_BYTES",
    "SecondaryReplica",
    "SecondaryTier",
    "SilentStrategy",
    "TentativeGossip",
    "TrafficMeasurement",
    "TreeError",
    "crossover_update_size",
    "fit_cost_model",
    "strategy_for",
    "latency_estimate_ms",
    "measure_sweep",
    "measure_update_traffic",
    "minimum_cost_bytes",
    "normalized_cost",
    "order_agreement",
    "replicas_for_faults",
    "tentative_order",
    "update_cost_bytes",
    "update_digest",
]
