"""Measured update traffic: the empirical side of the Figure 6 model.

:mod:`repro.consistency.costmodel` states what one update *should* cost:
b = c1*n^2 + (u + c2)*n + c3.  This module drives updates through a
bare simulated PBFT ring and reports what they *did* cost, split by
protocol phase via :attr:`repro.sim.network.Network.phase_stats`.  The
``repro costmodel --fit`` report and ``BENCH_fig6_costmodel.json`` fit
these measurements back to the equation across ring sizes, so a change
that silently inflates the quadratic term shows up as a coefficient
shift rather than a vibe.

With ``updates > 1`` and ``batch_size > 1`` the same harness measures
*batched* agreement: u updates share one pre-prepare/prepare/commit/
sign-share round, so the per-update quadratic term amortizes to roughly
c1/u -- the Castro-Liskov batching win ``repro costmodel --fit
--updates-per-round`` verifies empirically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from repro.consistency.pbft import InnerRing
from repro.crypto import make_principal
from repro.data import AppendBlock, TruePredicate, UpdateBranch, make_update
from repro.naming import object_guid
from repro.sim.kernel import Kernel
from repro.sim.network import Network


@dataclass(frozen=True, slots=True)
class TrafficMeasurement:
    """Wire traffic of one workload through an n-replica primary tier."""

    m: int
    n: int
    update_size: int
    #: actual on-the-wire size of the signed update (>= update_size);
    #: the mean when the workload carries several updates
    update_bytes: int
    total_messages: int
    total_bytes: int
    #: ``{subsystem: {phase: {"messages": m, "bytes": b}}}``
    phase_report: dict
    #: how many updates the workload submitted
    updates: int = 1
    #: updates per agreement round the ring was configured for
    batch_size: int = 1

    @property
    def per_update_bytes(self) -> float:
        return self.total_bytes / self.updates

    @property
    def per_update_messages(self) -> float:
        return self.total_messages / self.updates

    def to_dict(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "update_size": self.update_size,
            "update_bytes": self.update_bytes,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "updates": self.updates,
            "batch_size": self.batch_size,
            "per_update_bytes": self.per_update_bytes,
            "phase_report": self.phase_report,
        }


def measure_update_traffic(
    m: int,
    update_size: int,
    seed: int = 0,
    updates: int = 1,
    batch_size: int = 1,
    batch_delay_ms: float = 20.0,
    pipeline_depth: int = 0,
) -> TrafficMeasurement:
    """Run ``updates`` updates through a bare PBFT ring, counting bytes.

    The topology is a complete graph at uniform 50 ms latency -- the
    point is byte counts, not routing.  Everything derives from ``seed``,
    so measurements are reproducible run to run.  The default single
    update through an unbatched ring reproduces the classic Figure 6
    measurement byte for byte.
    """
    n = 3 * m + 1
    kernel = Kernel()
    graph = nx.complete_graph(n + 1)
    nx.set_edge_attributes(graph, 50.0, "latency_ms")
    network = Network(kernel, graph)
    rng = random.Random(seed)
    principals = [make_principal(f"r{i}", rng, bits=256) for i in range(n)]
    ring = InnerRing(
        kernel,
        network,
        list(range(n)),
        principals,
        m=m,
        batch_size=batch_size,
        batch_delay_ms=batch_delay_ms,
        pipeline_depth=pipeline_depth,
    )
    author = make_principal("author", rng, bits=256)
    total_update_bytes = 0
    for i in range(updates):
        if i == 0:
            payload = b"x" * update_size
        else:
            # Distinct bodies of (near-)identical wire size, so the mean
            # update_bytes stays representative of update_size.
            prefix = i.to_bytes(4, "big")
            payload = prefix + b"x" * max(0, update_size - len(prefix))
        update = make_update(
            author,
            object_guid(author.public_key, "costmodel"),
            [UpdateBranch(TruePredicate(), (AppendBlock(payload),))],
            float(i + 1),
        )
        total_update_bytes += update.size_bytes()
        ring.submit(n, update)
    kernel.run(until=120_000.0)
    return TrafficMeasurement(
        m=m,
        n=n,
        update_size=update_size,
        update_bytes=total_update_bytes // updates,
        total_messages=network.stats_total_messages,
        total_bytes=network.stats_total_bytes,
        phase_report=network.phase_report(),
        updates=updates,
        batch_size=batch_size,
    )


def measure_sweep(
    ms: tuple[int, ...] = (2, 3, 4),
    update_size: int = 10_000,
    seed: int = 0,
    updates: int = 1,
    batch_size: int = 1,
) -> list[TrafficMeasurement]:
    """One measurement per fault bound -- the fit needs >= 3 ring sizes."""
    return [
        measure_update_traffic(
            m, update_size, seed=seed, updates=updates, batch_size=batch_size
        )
        for m in ms
    ]


__all__ = ["TrafficMeasurement", "measure_update_traffic", "measure_sweep"]
