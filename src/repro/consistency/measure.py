"""Measured update traffic: the empirical side of the Figure 6 model.

:mod:`repro.consistency.costmodel` states what one update *should* cost:
b = c1*n^2 + (u + c2)*n + c3.  This module drives one update through a
bare simulated PBFT ring and reports what it *did* cost, split by
protocol phase via :attr:`repro.sim.network.Network.phase_stats`.  The
``repro costmodel --fit`` report and ``BENCH_fig6_costmodel.json`` fit
these measurements back to the equation across ring sizes, so a change
that silently inflates the quadratic term shows up as a coefficient
shift rather than a vibe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from repro.consistency.pbft import InnerRing
from repro.crypto import make_principal
from repro.data import AppendBlock, TruePredicate, UpdateBranch, make_update
from repro.naming import object_guid
from repro.sim.kernel import Kernel
from repro.sim.network import Network


@dataclass(frozen=True, slots=True)
class TrafficMeasurement:
    """Wire traffic of one update through an n-replica primary tier."""

    m: int
    n: int
    update_size: int
    #: actual on-the-wire size of the signed update (>= update_size)
    update_bytes: int
    total_messages: int
    total_bytes: int
    #: ``{subsystem: {phase: {"messages": m, "bytes": b}}}``
    phase_report: dict

    def to_dict(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "update_size": self.update_size,
            "update_bytes": self.update_bytes,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "phase_report": self.phase_report,
        }


def measure_update_traffic(
    m: int, update_size: int, seed: int = 0
) -> TrafficMeasurement:
    """Run one update through a bare PBFT ring and account every byte.

    The topology is a complete graph at uniform 50 ms latency -- the
    point is byte counts, not routing.  Everything derives from ``seed``,
    so measurements are reproducible run to run.
    """
    n = 3 * m + 1
    kernel = Kernel()
    graph = nx.complete_graph(n + 1)
    nx.set_edge_attributes(graph, 50.0, "latency_ms")
    network = Network(kernel, graph)
    rng = random.Random(seed)
    principals = [make_principal(f"r{i}", rng, bits=256) for i in range(n)]
    ring = InnerRing(kernel, network, list(range(n)), principals, m=m)
    author = make_principal("author", rng, bits=256)
    update = make_update(
        author,
        object_guid(author.public_key, "costmodel"),
        [UpdateBranch(TruePredicate(), (AppendBlock(b"x" * update_size),))],
        1.0,
    )
    ring.submit(n, update)
    kernel.run(until=60_000.0)
    return TrafficMeasurement(
        m=m,
        n=n,
        update_size=update_size,
        update_bytes=update.size_bytes(),
        total_messages=network.stats_total_messages,
        total_bytes=network.stats_total_bytes,
        phase_report=network.phase_report(),
    )


def measure_sweep(
    ms: tuple[int, ...] = (2, 3, 4),
    update_size: int = 10_000,
    seed: int = 0,
) -> list[TrafficMeasurement]:
    """One measurement per fault bound -- the fit needs >= 3 ring sizes."""
    return [measure_update_traffic(m, update_size, seed=seed) for m in ms]


__all__ = ["TrafficMeasurement", "measure_update_traffic", "measure_sweep"]
