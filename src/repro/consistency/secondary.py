"""The secondary tier: epidemic floating replicas (Section 4.4.3,
Figure 5b).

"Secondary replicas do not participate in the serialization protocol, may
contain incomplete copies of an object's data, and can be more numerous
than primary replicas. ... Secondary replicas contain both tentative and
committed data.  They employ an epidemic-style communication pattern to
quickly spread tentative commits among themselves and to pick a tentative
serialization order."

Each :class:`SecondaryReplica` keeps a committed version log plus a set
of tentative (not-yet-serialized) updates.  Its *tentative state* is the
committed head with tentative updates applied in optimistic-timestamp
order, so every replica holding the same update set derives the same
tentative view.  Anti-entropy exchanges reconcile update sets pairwise;
committed results arriving down the dissemination tree retire tentative
entries.  Replicas beyond a low-bandwidth tree edge receive
*invalidations* instead of update bodies and pull the bytes on demand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.consistency.dissemination import DisseminationTree
from repro.consistency.pbft import SMALL_MESSAGE_BYTES
from repro.consistency.timestamps import tentative_order
from repro.data.update import DataObjectState, Update, apply_update
from repro.data.version_log import VersionLog
from repro.sim.network import Message, Network, NodeId
from repro.telemetry import coalesce
from repro.util.ids import GUID


# -- wire messages ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TentativeGossip:
    """Push of tentative updates during anti-entropy."""

    updates: tuple[Update, ...]
    sender: NodeId


@dataclass(frozen=True, slots=True)
class AntiEntropyRequest:
    """Pull side of anti-entropy: what the requester already knows."""

    object_guid: GUID
    known_tentative: tuple[bytes, ...]
    committed_through: int
    sender: NodeId


@dataclass(frozen=True, slots=True)
class CommittedPush:
    """A serialized update flowing down the dissemination tree."""

    seq: int
    update: Update


@dataclass(frozen=True, slots=True)
class Invalidation:
    """Bandwidth-saving stand-in for a committed update at leaf edges."""

    seq: int
    object_guid: GUID
    update_id: bytes


@dataclass(frozen=True, slots=True)
class PullRequest:
    object_guid: GUID
    seq: int
    sender: NodeId


@dataclass(frozen=True, slots=True)
class PullResponse:
    seq: int
    update: Update


class SecondaryReplica:
    """One floating replica in the secondary tier (single object)."""

    def __init__(self, network_id: NodeId, tier: "SecondaryTier") -> None:
        self.network_id = network_id
        self.tier = tier
        self.committed_log = VersionLog()
        self.committed_updates: dict[int, Update] = {}
        self.committed_through = -1
        self._commit_buffer: dict[int, Update] = {}
        self.tentative: dict[bytes, Update] = {}
        self.invalidated: dict[int, Invalidation] = {}
        self._tentative_cache: DataObjectState | None = None

    # -- state views ----------------------------------------------------------

    @property
    def committed_state(self) -> DataObjectState:
        return self.committed_log.head

    def tentative_state(self) -> DataObjectState:
        """Committed head plus tentative updates in timestamp order.

        Aborting tentative updates are skipped; they may still commit
        later if the final serialization puts them after state changes
        that satisfy their predicates.
        """
        if self._tentative_cache is None:
            state = self.committed_log.head.copy()
            for update in tentative_order(self.tentative.values()):
                apply_update(state, update)
            self._tentative_cache = state
        return self._tentative_cache

    @property
    def is_stale(self) -> bool:
        """True when an invalidation told us we miss committed bytes."""
        return bool(self.invalidated)

    def _invalidate_cache(self) -> None:
        self._tentative_cache = None

    # -- local ingestion --------------------------------------------------------

    def add_tentative(self, update: Update) -> None:
        if update.update_id in self.tentative:
            return
        if any(u.update_id == update.update_id for u in self.committed_updates.values()):
            return
        if not update.verify_signature():
            return
        self.tentative[update.update_id] = update
        self._invalidate_cache()

    def apply_committed(self, seq: int, update: Update) -> None:
        """Apply a serialized update (in order; out-of-order buffers)."""
        if seq <= self.committed_through:
            return
        self._commit_buffer[seq] = update
        while self.committed_through + 1 in self._commit_buffer:
            next_seq = self.committed_through + 1
            next_update = self._commit_buffer.pop(next_seq)
            self.committed_log.apply(next_update)
            self.committed_updates[next_seq] = next_update
            self.committed_through = next_seq
            self.tentative.pop(next_update.update_id, None)
            self.invalidated.pop(next_seq, None)
            self._invalidate_cache()

    # -- message handling ------------------------------------------------------------

    def handle(self, message: Message) -> None:
        """Dispatch one tier message.

        A node can host secondary replicas of *several* objects, all
        subscribed to the same mailbox, so every branch first checks the
        payload names this tier's object -- without that, one object's
        committed pushes would silently apply to another object's
        replica on a shared node.
        """
        # Exact-type dispatch (payload classes are flat); heartbeat pings
        # sweep every node each round, so the miss case -- a payload type
        # this tier does not speak -- must be one dict lookup, not a
        # six-branch isinstance chain.
        handler = _SECONDARY_DISPATCH.get(type(message.payload))
        if handler is not None:
            handler(self, message.payload)

    def _on_tentative_gossip(self, payload: TentativeGossip) -> None:
        guid = self.tier.object_guid
        for update in payload.updates:
            if update.object_guid == guid:
                self.add_tentative(update)

    def _on_anti_entropy_request(self, payload: AntiEntropyRequest) -> None:
        if payload.object_guid == self.tier.object_guid:
            self._serve_anti_entropy(payload)

    def _on_committed_push(self, payload: CommittedPush) -> None:
        if payload.update.object_guid != self.tier.object_guid:
            return
        self.apply_committed(payload.seq, payload.update)
        self.tier._forward_down_tree(self.network_id, payload)

    def _on_invalidation(self, payload: Invalidation) -> None:
        if payload.object_guid != self.tier.object_guid:
            return
        if payload.seq > self.committed_through:
            self.invalidated[payload.seq] = payload
            self._invalidate_cache()
        self.tier._forward_down_tree(self.network_id, payload)

    def _on_pull_request(self, payload: PullRequest) -> None:
        if payload.object_guid != self.tier.object_guid:
            return
        update = self.committed_updates.get(payload.seq)
        if update is not None:
            self.tier.network.send(
                self.network_id,
                payload.sender,
                PullResponse(seq=payload.seq, update=update),
                size_bytes=update.size_bytes() + SMALL_MESSAGE_BYTES,
                phase="pull",
                subsystem="dissemination",
            )

    def _on_pull_response(self, payload: PullResponse) -> None:
        if payload.update.object_guid == self.tier.object_guid:
            self.apply_committed(payload.seq, payload.update)

    def _serve_anti_entropy(self, request: AntiEntropyRequest) -> None:
        known = set(request.known_tentative)
        missing = tuple(
            u for uid, u in sorted(self.tentative.items()) if uid not in known
        )
        if missing:
            self.tier.network.send(
                self.network_id,
                request.sender,
                TentativeGossip(updates=missing, sender=self.network_id),
                size_bytes=sum(u.size_bytes() for u in missing) + SMALL_MESSAGE_BYTES,
                phase="anti_entropy",
                subsystem="dissemination",
            )
        # Committed catch-up: stream anything the requester lacks.
        for seq in sorted(self.committed_updates):
            if seq > request.committed_through:
                update = self.committed_updates[seq]
                self.tier.network.send(
                    self.network_id,
                    request.sender,
                    CommittedPush(seq=seq, update=update),
                    size_bytes=update.size_bytes() + SMALL_MESSAGE_BYTES,
                    phase="anti_entropy",
                    subsystem="dissemination",
                )

    # -- initiating exchanges -----------------------------------------------------------

    def start_anti_entropy(self, partner: NodeId) -> None:
        """Push-pull with a partner: advertise what we know, push our
        tentative set."""
        request = AntiEntropyRequest(
            object_guid=self.tier.object_guid,
            known_tentative=tuple(sorted(self.tentative)),
            committed_through=self.committed_through,
            sender=self.network_id,
        )
        self.tier.network.send(
            self.network_id,
            partner,
            request,
            size_bytes=SMALL_MESSAGE_BYTES + 8 * len(self.tentative),
            phase="anti_entropy",
            subsystem="dissemination",
        )
        if self.tentative:
            self.tier.network.send(
                self.network_id,
                partner,
                TentativeGossip(
                    updates=tuple(self.tentative.values()), sender=self.network_id
                ),
                size_bytes=sum(u.size_bytes() for u in self.tentative.values())
                + SMALL_MESSAGE_BYTES,
                phase="anti_entropy",
                subsystem="dissemination",
            )

    def pull_missing(self) -> None:
        """Ask the tree parent for the bodies of invalidated versions.

        Requests every sequence number from the first gap through the
        newest invalidation: a replica that joined late may be missing
        updates *before* the invalidated one, and commits apply in order.
        """
        parent = self.tier.tree.parent(self.network_id)
        if parent is None or not self.invalidated:
            return
        newest = max(self.invalidated)
        for seq in range(self.committed_through + 1, newest + 1):
            self.tier.network.send(
                self.network_id,
                parent,
                PullRequest(
                    object_guid=self.tier.object_guid,
                    seq=seq,
                    sender=self.network_id,
                ),
                size_bytes=SMALL_MESSAGE_BYTES,
                phase="pull",
                subsystem="dissemination",
            )


#: payload type -> bound handler for :meth:`SecondaryReplica.handle`;
#: unknown types (heartbeats, PBFT traffic on a shared node) miss the
#: dict and are ignored, as the isinstance chain did.
_SECONDARY_DISPATCH = {
    TentativeGossip: SecondaryReplica._on_tentative_gossip,
    AntiEntropyRequest: SecondaryReplica._on_anti_entropy_request,
    CommittedPush: SecondaryReplica._on_committed_push,
    Invalidation: SecondaryReplica._on_invalidation,
    PullRequest: SecondaryReplica._on_pull_request,
    PullResponse: SecondaryReplica._on_pull_response,
}


class SecondaryTier:
    """All secondary replicas of one object, plus their dissemination tree.

    The tree's root is the primary-tier contact node; committed updates
    enter via :meth:`push_committed` (wired to the inner ring's
    certificate callback by :mod:`repro.core`).
    """

    def __init__(
        self,
        network: Network,
        object_guid: GUID,
        root_contact: NodeId,
        rng: random.Random,
        max_fanout: int = 4,
        telemetry=None,
    ) -> None:
        self.network = network
        self.object_guid = object_guid
        self.rng = rng
        self.telemetry = coalesce(telemetry)
        self.tree = DisseminationTree(
            network,
            root=root_contact,
            max_fanout=max_fanout,
            telemetry=self.telemetry,
        )
        self.replicas: dict[NodeId, SecondaryReplica] = {}
        #: committed updates already pushed, kept so the tree root can
        #: serve pulls ("pull missing information from parents and
        #: primary replicas").
        self._pushed: dict[int, Update] = {}
        network.subscribe(root_contact, self._root_handle)

    def _root_handle(self, message: Message) -> None:
        payload = message.payload
        # cheap exact-type reject: this runs for every message delivered
        # to the root node, heartbeat acks included
        t = type(payload)
        if t is not PullRequest and t is not AntiEntropyRequest:
            return
        if isinstance(payload, PullRequest):
            if payload.object_guid != self.object_guid:
                return
            update = self._pushed.get(payload.seq)
            if update is not None:
                self.network.send(
                    self.tree.root,
                    payload.sender,
                    PullResponse(seq=payload.seq, update=update),
                    size_bytes=update.size_bytes() + SMALL_MESSAGE_BYTES,
                    phase="pull",
                    subsystem="dissemination",
                )
        elif isinstance(payload, AntiEntropyRequest):
            # Catch-up served from the primary tier's pushed log: an
            # orphan reparented directly under the root ("pull missing
            # information from parents and primary replicas") streams
            # everything it missed.
            if payload.object_guid != self.object_guid:
                return
            for seq in sorted(self._pushed):
                if seq > payload.committed_through:
                    update = self._pushed[seq]
                    self.network.send(
                        self.tree.root,
                        payload.sender,
                        CommittedPush(seq=seq, update=update),
                        size_bytes=update.size_bytes() + SMALL_MESSAGE_BYTES,
                        phase="anti_entropy",
                        subsystem="dissemination",
                    )

    def repoint_root(self, new_root: NodeId) -> None:
        """Move the tree root to a new primary-tier contact.

        Ring-membership handoff calls this when the shard's old contact
        node left the membership (or died): the pushed-update log and the
        whole tree shape survive, only the root mailbox moves.
        """
        old_root = self.tree.root
        if new_root == old_root:
            return
        self.network.unsubscribe(old_root, self._root_handle)
        self.tree.repoint_root(new_root)
        self.network.subscribe(new_root, self._root_handle)

    def add_replica(self, network_id: NodeId, low_bandwidth: bool = False) -> SecondaryReplica:
        replica = SecondaryReplica(network_id, self)
        self.replicas[network_id] = replica
        self.network.subscribe(network_id, replica.handle)
        self.tree.add_member(network_id)
        if low_bandwidth:
            self.tree.mark_low_bandwidth(network_id)
        return replica

    def remove_replica(self, network_id: NodeId) -> None:
        replica = self.replicas.pop(network_id, None)
        if replica is not None:
            self.network.unsubscribe(network_id, replica.handle)
        self.tree.remove_member(network_id)

    def repair_member_failure(self, network_id: NodeId) -> dict[NodeId, NodeId]:
        """Remove a *dead* member: orphans reattach under live nodes only.

        Unlike :meth:`remove_replica` (a graceful departure), this is the
        recovery path: the dead replica's state is unrecoverable, so its
        record is simply dropped, and orphaned children are reparented
        with a liveness filter so they never land under another corpse.
        Returns the ``orphan -> new parent`` mapping so the caller can
        drive catch-up anti-entropy.
        """
        replica = self.replicas.pop(network_id, None)
        if replica is not None:
            self.network.unsubscribe(network_id, replica.handle)
        return self.tree.remove_member(
            network_id,
            candidate_filter=lambda member: not self.network.is_down(member),
        )

    # -- tentative path -----------------------------------------------------------

    def submit_tentative(self, client_node: NodeId, update: Update, fanout: int = 2) -> None:
        """Client sends the update to a few random secondary replicas
        (Figure 5a: '... as well as to several other random replicas')."""
        if not self.replicas:
            return
        targets = self.rng.sample(
            sorted(self.replicas), min(fanout, len(self.replicas))
        )
        tel = self.telemetry
        with tel.span("secondary.tentative", client=client_node):
            for target in targets:
                self.network.send(
                    client_node,
                    target,
                    TentativeGossip(updates=(update,), sender=client_node),
                    size_bytes=update.size_bytes() + SMALL_MESSAGE_BYTES,
                    phase="tentative",
                    subsystem="dissemination",
                )
        if tel.enabled:
            tel.count("secondary_tentative_pushes_total", len(targets))

    def epidemic_round(self) -> None:
        """Each replica anti-entropies with one random partner."""
        ids = sorted(self.replicas)
        if len(ids) < 2:
            return
        if self.telemetry.enabled:
            self.telemetry.count("secondary_anti_entropy_rounds_total")
        for replica_id in ids:
            partner = self.rng.choice([i for i in ids if i != replica_id])
            self.replicas[replica_id].start_anti_entropy(partner)

    def start_epidemic_timer(self, kernel, interval_ms: float = 5_000.0) -> None:
        """Run anti-entropy continuously on a kernel timer (with jitter,
        so rounds don't synchronize across tiers)."""
        from repro.sim.kernel import Timer

        if getattr(self, "_timer", None) is not None and self._timer.running:
            return
        self._timer = Timer(
            kernel,
            interval_ms,
            self.epidemic_round,
            jitter=lambda: self.rng.uniform(0.0, interval_ms * 0.1),
        )
        self._timer.start()

    def stop_epidemic_timer(self) -> None:
        timer = getattr(self, "_timer", None)
        if timer is not None:
            timer.stop()

    # -- committed path ---------------------------------------------------------------

    def push_committed(self, seq: int, update: Update) -> None:
        """Multicast a serialized update down the dissemination tree,
        degrading to invalidations across low-bandwidth edges.

        The root sends one hop; each replica forwards to its children on
        receipt (see :meth:`_forward_down_tree`), so delivery time grows
        with tree depth as in a real overlay multicast.
        """
        self._pushed[seq] = update
        with self.telemetry.span("dissem.push", seq=seq):
            self.tree.send_to_children(
                self.tree.root,
                CommittedPush(seq=seq, update=update),
                size_bytes=update.size_bytes() + SMALL_MESSAGE_BYTES,
                small_payload=self._invalidation_for(seq, update.update_id),
                small_size_bytes=SMALL_MESSAGE_BYTES,
            )

    def _invalidation_for(self, seq: int, update_id: bytes) -> Invalidation:
        return Invalidation(seq=seq, object_guid=self.object_guid, update_id=update_id)

    def _forward_down_tree(self, node: NodeId, payload: object) -> None:
        """A replica received a tree push; forward it to its children."""
        if isinstance(payload, CommittedPush):
            self.tree.send_to_children(
                node,
                payload,
                size_bytes=payload.update.size_bytes() + SMALL_MESSAGE_BYTES,
                small_payload=self._invalidation_for(
                    payload.seq, payload.update.update_id
                ),
                small_size_bytes=SMALL_MESSAGE_BYTES,
            )
        elif isinstance(payload, Invalidation):
            # A node that only has the invalidation can only pass it on.
            self.tree.send_to_children(
                node, payload, size_bytes=SMALL_MESSAGE_BYTES
            )

    # -- queries -----------------------------------------------------------------------

    def consistent_fraction(self) -> float:
        """Fraction of replicas whose committed state matches the max seq."""
        if not self.replicas:
            return 1.0
        newest = max(r.committed_through for r in self.replicas.values())
        if newest < 0:
            return 1.0
        agree = sum(
            1 for r in self.replicas.values() if r.committed_through == newest
        )
        return agree / len(self.replicas)

    def tentative_agreement(self) -> float:
        """Fraction of replicas sharing the plurality tentative update set."""
        if not self.replicas:
            return 1.0
        signatures: dict[tuple[bytes, ...], int] = {}
        for replica in self.replicas.values():
            key = tuple(sorted(replica.tentative))
            signatures[key] = signatures.get(key, 0) + 1
        return max(signatures.values()) / len(self.replicas)
