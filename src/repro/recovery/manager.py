"""The recovery manager: one failure detector feeding every repair loop.

Constructed by :class:`~repro.core.system.OceanStoreSystem` only when
``DeploymentConfig.recovery.enabled`` is set; the manager owns the
shared :class:`~repro.recovery.detector.FailureDetector` (routing and
dissemination react to the *same* suspicion events, per the tentpole
design), the :class:`~repro.recovery.repair.RoutingRepairer`, the
:class:`~repro.recovery.treeheal.TreeRepairer`, and the periodic
pointer-refresh timer.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.recovery.config import RecoveryConfig
from repro.recovery.detector import FailureDetector
from repro.recovery.repair import RoutingRepairer
from repro.recovery.treeheal import TreeRepairer
from repro.routing.plaxton import PlaxtonMesh
from repro.routing.probabilistic import ProbabilisticLocator
from repro.routing.salt import SaltedRouter
from repro.sim.kernel import Kernel, Timer
from repro.sim.network import Network, NodeId
from repro.telemetry import coalesce
from repro.util.ids import GUID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.consistency.secondary import SecondaryTier
    from repro.introspect.replica_mgmt import ReplicaManager


class RecoveryManager:
    """Wires detection to repair; the system's single recovery handle."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        mesh: PlaxtonMesh,
        router: SaltedRouter,
        probabilistic: ProbabilisticLocator,
        tiers: dict[GUID, "SecondaryTier"],
        observer: NodeId,
        rng: random.Random,
        config: RecoveryConfig,
        replica_manager: "ReplicaManager | None" = None,
        telemetry=None,
    ) -> None:
        self.config = config
        self.telemetry = coalesce(telemetry)
        self.detector = FailureDetector(
            kernel,
            network,
            observer=observer,
            monitored=sorted(network.nodes()),
            rng=rng,
            interval_ms=config.heartbeat_interval_ms,
            timeout_ms=config.heartbeat_timeout_ms,
            threshold=config.suspicion_threshold,
            telemetry=telemetry,
        )
        self.repairer = RoutingRepairer(
            mesh, router, network, telemetry=telemetry
        )
        self.tree_repairer = TreeRepairer(
            network,
            tiers,
            probabilistic,
            replica_manager=replica_manager,
            telemetry=telemetry,
        )
        # Routing heals before the trees do: reparented orphans route
        # their catch-up traffic through a mesh that no longer points at
        # the dead node.
        self._routing_sub = self.detector.subscribe(
            on_suspect=self.repairer.on_suspect
        )
        self._tree_sub = self.detector.subscribe(
            on_suspect=self.tree_repairer.on_suspect
        )
        self._refresh_timer = Timer(
            kernel,
            config.refresh_interval_ms,
            self.repairer.refresh,
            jitter=lambda: rng.uniform(
                0.0, config.refresh_interval_ms * 0.05
            ),
            label="recovery.pointer-refresh",
        )

    def start(self) -> None:
        self.detector.start()
        self._refresh_timer.start()

    def stop(self) -> None:
        self.detector.stop()
        self._refresh_timer.stop()

    def close(self) -> None:
        """Full teardown: stop both timers and detach the repair loops
        from the detector.

        ``stop()`` deliberately leaves the suspect/restore subscriptions
        attached so a stopped manager can be restarted; ``close()`` is
        for callers that are done with the system object -- sweep-mode
        workers build and discard many systems per process, and detached
        listeners keep the repairers (and their meshes) collectable.
        """
        self.stop()
        self._routing_sub.cancel()
        self._tree_sub.cancel()

    # -- publication bookkeeping (delegated) --------------------------------

    def register_publication(self, replica_node: NodeId, guid: GUID) -> None:
        self.repairer.register(replica_node, guid)

    def forget_publication(
        self, replica_node: NodeId, guid: GUID, scrub: bool = False
    ) -> None:
        self.repairer.forget(replica_node, guid, scrub=scrub)
