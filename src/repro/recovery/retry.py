"""Client-side retry budgets for degraded reads.

A :class:`RetryPolicy` is the client's patience, made explicit: a total
deadline in virtual milliseconds, a capped number of attempts, and an
exponential backoff whose jitter is drawn from a named
:class:`~repro.util.rng.SeedSequence` stream -- so two clients with the
same policy and seed back off identically, and a chaos run that embeds a
degraded read stays bit-replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import SeedSequence


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Deadline-budgeted exponential backoff with deterministic jitter."""

    #: total virtual-time budget for the whole read, across all rungs
    deadline_ms: float = 60_000.0
    #: maximum retry attempts (backoff sleeps) before giving up
    max_attempts: int = 4
    #: first backoff delay; later delays multiply by ``backoff_factor``
    backoff_base_ms: float = 1_000.0
    backoff_factor: float = 2.0
    #: each delay is stretched by up to this fraction, deterministically
    jitter_frac: float = 0.2
    #: seed for the jitter stream (same seed -> same schedule)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms <= 0:
            raise ValueError("backoff_base_ms must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    def backoff_delays(self) -> list[float]:
        """The full backoff schedule (ms), one entry per attempt."""
        rng = SeedSequence(self.seed).derive("retry-backoff")
        delays = []
        delay = self.backoff_base_ms
        for _ in range(self.max_attempts):
            delays.append(delay * (1.0 + self.jitter_frac * rng.random()))
            delay *= self.backoff_factor
        return delays
