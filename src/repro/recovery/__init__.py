"""Self-healing recovery: detection, soft-state repair, degradation.

The paper assumes soft state is continuously repaired -- neighbor links
republished (Section 4.3.4), dissemination trees rebuilt under churn
(Section 4.4.4), stale pointers aged out.  This package supplies the
machinery: a seeded-deterministic heartbeat :class:`FailureDetector`,
:class:`RoutingRepairer` (link eviction + pointer republish + periodic
refresh), :class:`TreeRepairer` (orphan reparenting + anti-entropy
catch-up), a :class:`RecoveryManager` tying them to one suspicion
stream, and the client-side :class:`RetryPolicy` that drives the
degraded-read ladder in :meth:`repro.core.system.OceanStoreSystem.read_degraded`.
"""

from repro.recovery.config import RecoveryConfig
from repro.recovery.detector import (
    HEARTBEAT_BYTES,
    FailureDetector,
    HeartbeatAck,
    HeartbeatPing,
    Subscription,
)
from repro.recovery.manager import RecoveryManager
from repro.recovery.repair import RoutingRepairer
from repro.recovery.retry import RetryPolicy
from repro.recovery.treeheal import TreeRepairer

__all__ = [
    "HEARTBEAT_BYTES",
    "FailureDetector",
    "HeartbeatAck",
    "HeartbeatPing",
    "RecoveryConfig",
    "RecoveryManager",
    "RetryPolicy",
    "RoutingRepairer",
    "Subscription",
    "TreeRepairer",
]
