"""Dissemination-tree self-repair (Section 4.4.4).

When a secondary replica dies, its children become an orphaned subtree:
committed pushes stop reaching them and their pull path is gone.  On
suspicion, :class:`TreeRepairer` walks every tier hosting a replica on
the dead node and

1. removes the dead member (its mailbox is unsubscribed, its replica
   record dropped, its low-bandwidth flag cleared),
2. reparents the orphans via the tree's own membership rules, restricted
   to *live* candidates,
3. has each orphan anti-entropy with its new parent, which streams the
   committed updates the subtree missed (the tree root serves catch-up
   from the primary tier's pushed log), and
4. clears the dead replica out of the location tiers and the
   introspective replica registry.

Pointer scrubbing for the dead host's publications is the routing
repairer's job; the manager wires both to the same suspicion event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consistency.dissemination import TreeError
from repro.routing.probabilistic import ProbabilisticLocator
from repro.sim.network import Network, NodeId
from repro.telemetry import coalesce
from repro.util.ids import GUID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.consistency.secondary import SecondaryTier
    from repro.introspect.replica_mgmt import ReplicaManager


class TreeRepairer:
    """Reparent orphaned dissemination subtrees and catch them up."""

    def __init__(
        self,
        network: Network,
        tiers: dict[GUID, "SecondaryTier"],
        probabilistic: ProbabilisticLocator,
        replica_manager: "ReplicaManager | None" = None,
        telemetry=None,
    ) -> None:
        self.network = network
        self.tiers = tiers
        self.probabilistic = probabilistic
        self.replica_manager = replica_manager
        self.telemetry = coalesce(telemetry)
        self.stats_reparented = 0

    def on_suspect(self, node: NodeId) -> None:
        tel = self.telemetry
        for guid in sorted(self.tiers, key=lambda g: g.value):
            tier = self.tiers[guid]
            if node == tier.tree.root or node not in tier.replicas:
                continue
            try:
                reparented = tier.repair_member_failure(node)
            except TreeError:
                # No live member has spare fanout: leave the tier for a
                # later suspicion (or epidemic anti-entropy) to mend.
                if tel.enabled:
                    tel.record(
                        "recovery", "reparent_failed", object=guid, node=node
                    )
                continue
            if tel.enabled:
                tel.count("recovery_tree_repairs_total")
            for orphan in sorted(reparented):
                new_parent = reparented[orphan]
                self.stats_reparented += 1
                if tel.enabled:
                    tel.record(
                        "recovery",
                        "reparent",
                        object=guid,
                        orphan=orphan,
                        parent=new_parent,
                    )
                replica = tier.replicas.get(orphan)
                if replica is not None and not self.network.is_down(orphan):
                    # Anti-entropy with the new parent streams the
                    # committed updates the orphaned subtree missed.
                    replica.start_anti_entropy(new_parent)
            self.probabilistic.remove_object(node, guid)
            if self.replica_manager is not None:
                self.replica_manager.forget_replica(guid, node)
