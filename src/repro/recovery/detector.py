"""Heartbeat-based failure detection over the simulation kernel.

The paper's soft-state layers (Plaxton neighbor links, dissemination
trees) all assume *someone* notices a dead server; this is that someone.
An observer node pings every monitored node on a jittered kernel timer;
a node that misses ``suspicion_threshold`` consecutive rounds is
declared *suspected* and registered listeners (routing repair,
dissemination-tree repair) are notified.  A later ack clears the
suspicion and fires the restore listeners.

Everything runs through :class:`~repro.sim.network.Network` messages and
kernel timers, so detection latency is real (pings to a crashed node are
dropped by the network, acks ride actual links) and the suspicion
timeline is a deterministic function of the master seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.sim.kernel import Kernel, Timer
from repro.sim.network import Message, Network, NodeId
from repro.telemetry import coalesce

#: Wire size of a ping or ack (small control message).
HEARTBEAT_BYTES = 64


# slots for footprint, eq=False for a fast __init__ (no frozen
# per-field __setattr__, no generated __eq__): one ack is allocated per
# delivered ping, squarely on the kernel's hottest path
@dataclass(slots=True, eq=False)
class HeartbeatPing:
    round_no: int
    sender: NodeId


@dataclass(slots=True, eq=False)
class HeartbeatAck:
    round_no: int
    sender: NodeId


@dataclass
class Subscription:
    """A cancellable registration on the failure detector.

    Returned by :meth:`FailureDetector.subscribe`; call :meth:`cancel`
    to detach both callbacks (idempotent).
    """

    detector: "FailureDetector"
    on_suspect: Callable[[NodeId], None] | None = None
    on_restore: Callable[[NodeId], None] | None = None
    active: bool = True

    def cancel(self) -> None:
        if not self.active:
            return
        self.active = False
        if self.on_suspect is not None:
            self.detector._on_suspect.remove(self.on_suspect)
        if self.on_restore is not None:
            self.detector._on_restore.remove(self.on_restore)


class FailureDetector:
    """One observer's suspicion state over a set of monitored nodes."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        observer: NodeId,
        monitored: list[NodeId],
        rng: random.Random,
        interval_ms: float = 2_000.0,
        timeout_ms: float = 1_500.0,
        threshold: int = 2,
        telemetry=None,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.observer = observer
        self.monitored = sorted(n for n in monitored if n != observer)
        self.interval_ms = interval_ms
        self.timeout_ms = timeout_ms
        self.threshold = threshold
        self.telemetry = coalesce(telemetry)
        #: consecutive missed rounds per node
        self.suspicion: dict[NodeId, int] = {}
        self.suspected: set[NodeId] = set()
        #: (virtual time, "suspect"|"restore", node) -- the determinism
        #: contract: same seed, same timeline
        self.timeline: list[tuple[float, str, NodeId]] = []
        self._last_ack: dict[NodeId, int] = {}
        self._round_no = 0
        self._on_suspect: list[Callable[[NodeId], None]] = []
        self._on_restore: list[Callable[[NodeId], None]] = []
        for node in self.monitored:
            network.subscribe(node, self._respond)
        network.subscribe(observer, self._handle_ack)
        self._timer = Timer(
            kernel,
            interval_ms,
            self._round,
            jitter=lambda: rng.uniform(0.0, interval_ms * 0.05),
            label="recovery.heartbeat",
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def subscribe(
        self,
        on_suspect: Callable[[NodeId], None] | None = None,
        on_restore: Callable[[NodeId], None] | None = None,
    ) -> Subscription:
        """Register for suspicion transitions; the public listener API.

        Callbacks fire in subscription order on each *transition* (a
        node newly suspected, a suspected node acking again) -- never on
        steady state.  Returns a :class:`Subscription` whose ``cancel``
        detaches both callbacks, so layered subsystems (tree repair, ring
        handoff) can unhook cleanly when torn down.
        """
        if on_suspect is None and on_restore is None:
            raise ValueError("subscribe needs at least one callback")
        if on_suspect is not None:
            self._on_suspect.append(on_suspect)
        if on_restore is not None:
            self._on_restore.append(on_restore)
        return Subscription(
            detector=self, on_suspect=on_suspect, on_restore=on_restore
        )

    def on_suspect(self, callback: Callable[[NodeId], None]) -> None:
        """Back-compat shim for :meth:`subscribe`."""
        self.subscribe(on_suspect=callback)

    def on_restore(self, callback: Callable[[NodeId], None]) -> None:
        """Back-compat shim for :meth:`subscribe`."""
        self.subscribe(on_restore=callback)

    # -- heartbeat rounds -----------------------------------------------------

    def _round(self) -> None:
        if self.network.is_down(self.observer):
            return  # a dead observer observes nothing
        self._round_no += 1
        round_no = self._round_no
        # Messages are immutable, so every monitored node gets the same
        # ping object: one allocation per round, not one per node.
        ping = HeartbeatPing(round_no, self.observer)
        send = self.network.send
        observer = self.observer
        for node in self.monitored:
            send(observer, node, ping, HEARTBEAT_BYTES, "heartbeat", "recovery")
        # fire-and-forget: post_after skips the EventHandle the old
        # call_after allocated and immediately discarded
        self.kernel.post_after(
            self.timeout_ms,
            lambda: self._evaluate(round_no),
            label="recovery.heartbeat-timeout",
        )
        if self.telemetry.enabled:
            self.telemetry.count("recovery_heartbeat_rounds_total")

    def _respond(self, message: Message) -> None:
        payload = message.payload
        # exact-type check: this handler runs on every monitored node for
        # every delivered message, so the miss case must be cheap
        if type(payload) is not HeartbeatPing:
            return
        if payload.sender != self.observer:
            return
        self.network.send(
            message.dst,
            self.observer,
            HeartbeatAck(payload.round_no, message.dst),
            HEARTBEAT_BYTES,
            "heartbeat",
            "recovery",
        )

    def _handle_ack(self, message: Message) -> None:
        payload = message.payload
        if type(payload) is HeartbeatAck:
            last_ack = self._last_ack
            sender = payload.sender
            if payload.round_no > last_ack.get(sender, 0):
                last_ack[sender] = payload.round_no

    def _evaluate(self, round_no: int) -> None:
        if self.network.is_down(self.observer):
            return
        tel = self.telemetry
        for node in self.monitored:
            if self._last_ack.get(node, 0) >= round_no:
                self.suspicion[node] = 0
                if node in self.suspected:
                    self.suspected.discard(node)
                    self.timeline.append((self.kernel.now, "restore", node))
                    if tel.enabled:
                        tel.count("recovery_restores_total")
                        tel.record("recovery", "restore", node=node)
                    for callback in self._on_restore:
                        callback(node)
                continue
            count = self.suspicion.get(node, 0) + 1
            self.suspicion[node] = count
            if count >= self.threshold and node not in self.suspected:
                self.suspected.add(node)
                self.timeline.append((self.kernel.now, "suspect", node))
                if tel.enabled:
                    tel.count("recovery_suspicions_total")
                    tel.record(
                        "recovery", "suspect", node=node, missed_rounds=count
                    )
                for callback in self._on_suspect:
                    callback(node)
