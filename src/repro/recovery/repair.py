"""Routing soft-state repair: eviction, republish, and pointer refresh.

Section 4.3.4: "the neighbor links of the routing system are redundant,
soft-state" -- when a neighbor dies, routing fails over to backups and
the dead link is eventually evicted; location pointers along publish
paths through the dead node are republished so locates converge on live
surrogate roots; and pointers are periodically refreshed so stale paths
age out instead of accumulating forever.

:class:`RoutingRepairer` keeps, per registered publication
``(replica_node, object_guid)``, the per-salt publish path it last
deposited pointers along.  On suspicion of a node it (1) evicts the node
from every neighbor-table entry in the mesh, (2) scrubs and republishes
every publication whose stored path ran through the dead node, and
(3) drops publications that were *hosted* on the dead node.  The
periodic :meth:`refresh` re-walks every publication: scrub the old path,
publish along the current route, remember the new path.
"""

from __future__ import annotations

from repro.routing.plaxton import PlaxtonMesh
from repro.routing.salt import SaltedRouter
from repro.sim.network import Network, NodeId
from repro.telemetry import coalesce
from repro.util.ids import GUID

#: salt index -> publish path last used for that salt
_SaltPaths = dict[int, tuple[NodeId, ...]]


class RoutingRepairer:
    """Soft-state maintenance for the Plaxton mesh's pointers and links."""

    def __init__(
        self,
        mesh: PlaxtonMesh,
        router: SaltedRouter,
        network: Network,
        telemetry=None,
    ) -> None:
        self.mesh = mesh
        self.router = router
        self.network = network
        self.telemetry = coalesce(telemetry)
        self._paths: dict[tuple[NodeId, GUID], _SaltPaths] = {}
        self.stats_evictions = 0
        self.stats_republishes = 0

    # -- publication bookkeeping -------------------------------------------

    def register(self, replica_node: NodeId, object_guid: GUID) -> None:
        """Record the publish paths for a replica already published
        through the location service, so repair can find them later."""
        paths: _SaltPaths = {}
        for i, salted in enumerate(self.router.salted_guids(object_guid)):
            trace = self.mesh.route_to_root(replica_node, salted)
            paths[i] = tuple(trace.path)
        self._paths[(replica_node, object_guid)] = paths

    def forget(
        self, replica_node: NodeId, object_guid: GUID, scrub: bool = True
    ) -> None:
        """Drop a publication; optionally scrub its pointers too."""
        paths = self._paths.pop((replica_node, object_guid), None)
        if paths is not None and scrub:
            self._scrub(replica_node, object_guid, paths)

    def publications(self) -> list[tuple[NodeId, GUID]]:
        return sorted(self._paths, key=lambda key: (key[0], key[1].value))

    # -- repair actions ------------------------------------------------------

    def on_suspect(self, node: NodeId) -> None:
        """A node is suspected dead: evict its links, heal its paths."""
        self.evict(node)
        for replica_node, object_guid in self.publications():
            if replica_node == node:
                # The dead node hosted this replica: its pointers are
                # lies now; scrub them and forget the publication.
                self.forget(replica_node, object_guid, scrub=True)
                continue
            paths = self._paths[(replica_node, object_guid)]
            if any(node in path for path in paths.values()):
                self.republish(replica_node, object_guid)

    def evict(self, node: NodeId) -> None:
        """Remove a node from every neighbor-table entry in the mesh.

        Routing already *skips* dead neighbors per hop; eviction makes
        the removal permanent so the table slot is free for a backup.
        The node's own table is left alone (it is not routing anyway,
        and a rebuild via ``build_tables`` restores everything).
        """
        removed = 0
        for nid in sorted(self.mesh.nodes):
            if nid == node:
                continue
            for row in self.mesh.nodes[nid].table:
                for entry in row:
                    if node in entry:
                        entry.remove(node)
                        removed += 1
        self.stats_evictions += 1
        tel = self.telemetry
        if tel.enabled:
            tel.count("recovery_evictions_total")
            tel.record("recovery", "evict", node=node, links_removed=removed)

    def republish(self, replica_node: NodeId, object_guid: GUID) -> None:
        """Scrub the stored paths and deposit pointers along fresh routes."""
        key = (replica_node, object_guid)
        paths = self._paths.get(key)
        if paths is None:
            return
        if self.network.is_down(replica_node):
            # Can't republish from a dead host; drop the publication.
            self.forget(replica_node, object_guid, scrub=True)
            return
        self._scrub(replica_node, object_guid, paths)
        fresh: _SaltPaths = {}
        for i, salted in enumerate(self.router.salted_guids(object_guid)):
            trace = self.mesh.publish(replica_node, salted)
            fresh[i] = tuple(trace.path)
        self._paths[key] = fresh
        self.stats_republishes += 1
        tel = self.telemetry
        if tel.enabled:
            tel.count("recovery_republishes_total")
            tel.record(
                "recovery",
                "republish",
                replica=replica_node,
                object=object_guid,
                salts=len(fresh),
            )

    def refresh(self) -> None:
        """Periodic pointer refresh: re-publish every live publication so
        stale paths age out (TTL-style soft state)."""
        tel = self.telemetry
        if tel.enabled:
            tel.count("recovery_refresh_sweeps_total")
        for replica_node, object_guid in self.publications():
            self.republish(replica_node, object_guid)

    # -- internals -----------------------------------------------------------

    def _scrub(
        self, replica_node: NodeId, object_guid: GUID, paths: _SaltPaths
    ) -> None:
        for i, salted in enumerate(self.router.salted_guids(object_guid)):
            for nid in paths.get(i, ()):
                node = self.mesh.nodes.get(nid)
                if node is not None:
                    node.remove_pointer(salted, replica_node)
