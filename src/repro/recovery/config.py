"""Knobs for the self-healing recovery layer (Sections 4.3.3, 4.4.4).

All recovery behaviour is gated on ``enabled`` (default off): a
deployment with recovery disabled schedules no heartbeats, derives no
RNG streams, and sends no messages, so its event trace is byte-identical
to a deployment built before this subsystem existed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RecoveryConfig:
    """Failure-detection and soft-state-repair parameters."""

    enabled: bool = False

    #: how often the observer pings every monitored node (virtual ms)
    heartbeat_interval_ms: float = 2_000.0
    #: how long after a ping an ack may arrive before it counts as missed;
    #: must be shorter than the interval so rounds never overlap
    heartbeat_timeout_ms: float = 1_500.0
    #: consecutive missed rounds before a node is declared suspected
    suspicion_threshold: int = 2
    #: period of the pointer-refresh sweep that re-publishes every known
    #: replica's location pointers so stale paths age out (virtual ms)
    refresh_interval_ms: float = 30_000.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat_interval_ms must be positive")
        if not 0 < self.heartbeat_timeout_ms < self.heartbeat_interval_ms:
            raise ValueError(
                "heartbeat_timeout_ms must be in (0, heartbeat_interval_ms)"
            )
        if self.suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be >= 1")
        if self.refresh_interval_ms <= 0:
            raise ValueError("refresh_interval_ms must be positive")
