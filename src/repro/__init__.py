"""repro: a reproduction of OceanStore (Kubiatowicz et al., ASPLOS 2000).

A global-scale persistent storage architecture on untrusted
infrastructure: self-certifying naming, two-tier data location
(attenuated Bloom filters + a Plaxton mesh), a conflict-resolution update
model that operates over ciphertext, Byzantine-agreement serialization
with epidemic secondary replication, erasure-coded deep archival storage,
and introspective optimization -- all running inside a deterministic
discrete-event simulator.

Quick start::

    from repro import DeploymentConfig, OceanStoreSystem, make_client

    system = OceanStoreSystem(DeploymentConfig(seed=42))
    alice = make_client(system, "alice")
    notes = alice.create_object("notes")
    alice.write(notes, b"hello, ocean")
    assert alice.read(notes) == b"hello, ocean"

See :mod:`repro.api` for sessions/facades and :mod:`repro.core` for
deployment control (faults, archival, introspection).
"""

from repro.api import (
    ApiEvent,
    LocalBackend,
    OceanStoreHandle,
    Session,
    SessionGuarantee,
)
from repro.api.facades import FileSystemFacade, TransactionalFacade
from repro.core import DeploymentConfig, OceanStoreSystem, make_client
from repro.util import GUID

__version__ = "0.1.0"

__all__ = [
    "ApiEvent",
    "DeploymentConfig",
    "FileSystemFacade",
    "GUID",
    "LocalBackend",
    "OceanStoreHandle",
    "OceanStoreSystem",
    "Session",
    "SessionGuarantee",
    "TransactionalFacade",
    "make_client",
    "__version__",
]
