"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      -- run the end-to-end update-path demo on a fresh
                   simulated deployment (write, share, crash, restore);
* ``topology``  -- describe the deployment a config would build;
* ``reliability`` -- print the Section 4.5 availability table for given
                   parameters;
* ``costmodel`` -- print the Figure 6 normalized-cost series, or (with
                   ``--fit``) fit measured inner-ring traffic back to
                   the paper's equation across ring sizes;
* ``telemetry`` -- run an instrumented scenario and print the causal
                   span tree plus the metrics table;
* ``flightrec`` -- run a scenario with the flight recorder on and dump
                   the causally ordered event timeline;
* ``chaos``     -- run seeded fault-injection scenarios with invariant
                   checking; the same seed replays bit-identically;
* ``rings``     -- stand up a sharded control plane, drive one update
                   per shard, and print the ring directory, membership,
                   and per-ring commit stats;
* ``profile``   -- run a chaos scenario under the kernel profiler and
                   print the (subsystem, phase) wall-time attribution;
* ``slo``       -- drive an end-user workload (or a chaos scenario) and
                   print per-operation latency percentiles with SLO
                   threshold verdicts;
* ``health``    -- stand up a deployment and dump the control-plane
                   health snapshot (ring epochs, degraded shards,
                   suspected members, handoff progress) as JSON.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

from repro.archival import erasure_availability, nines, replication_availability
from repro.chaos import SCENARIOS, run_scenario, scenario_descriptions
from repro.consistency import normalized_cost, replicas_for_faults
from repro.core import ChaosConfig, DeploymentConfig, OceanStoreSystem, make_client
from repro.crypto.keys import make_principal
from repro.data import AppendBlock, TruePredicate, UpdateBranch, make_update
from repro.naming import object_guid
from repro.recovery import RecoveryConfig
from repro.sim import TopologyParams
from repro.telemetry import TelemetryConfig
from repro.telemetry.export import export_telemetry
from repro.telemetry.profiler import render_snapshot


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OceanStore (ASPLOS 2000) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the end-to-end demo")
    demo.add_argument("--seed", type=int, default=42)

    topo = sub.add_parser("topology", help="describe a deployment")
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--transit", type=int, default=8)
    topo.add_argument("--stubs", type=int, default=3)
    topo.add_argument("--nodes-per-stub", type=int, default=8)

    rel = sub.add_parser("reliability", help="Section 4.5 availability table")
    rel.add_argument("--machines", type=int, default=1_000_000)
    rel.add_argument("--down-fraction", type=float, default=0.1)
    rel.add_argument("--fragments", type=int, default=16)
    rel.add_argument("--rate", type=float, default=0.5)

    cost = sub.add_parser("costmodel", help="Figure 6 normalized costs")
    cost.add_argument("--faults", "-m", type=int, default=4)
    cost.add_argument(
        "--fit",
        action="store_true",
        help="measure one update through simulated rings at m=2,3,4 and "
        "fit b = c1*n^2 + (u+c2)*n + c3 to the observed bytes",
    )
    cost.add_argument(
        "--update-size", type=int, default=10_000, help="payload bytes for --fit"
    )
    cost.add_argument(
        "--updates-per-round",
        type=int,
        default=1,
        metavar="U",
        help="with --fit: batch U updates into each agreement round and "
        "report the per-update fit next to the unbatched one -- the "
        "measured c1*n^2 amortization of PBFT batching",
    )
    cost.add_argument("--seed", type=int, default=0)
    cost.add_argument(
        "--json", action="store_true", help="emit the --fit report as JSON"
    )

    telem = sub.add_parser(
        "telemetry", help="trace an instrumented scenario end to end"
    )
    telem.add_argument("--seed", type=int, default=42)
    telem.add_argument(
        "--scenario",
        choices=sorted(_SCENARIOS),
        default="update-path",
        help="which instrumented scenario to run",
    )
    telem.add_argument(
        "--max-depth", type=int, default=8, help="span tree display depth"
    )
    telem.add_argument(
        "--json",
        action="store_true",
        help="emit the full metrics+spans export as JSON instead of tables",
    )
    telem.add_argument(
        "--quantiles",
        default=None,
        metavar="Q,Q,...",
        help="histogram summary quantiles, e.g. 50,90,99.9 "
        "(default: 50,90,95,99)",
    )

    flight = sub.add_parser(
        "flightrec",
        help="dump the flight-recorder timeline of a scenario run",
    )
    flight.add_argument("--seed", type=int, default=42)
    flight.add_argument(
        "--scenario",
        choices=sorted(_SCENARIOS),
        default="update-path",
        help="instrumented scenario to record (ignored with --chaos)",
    )
    flight.add_argument(
        "--chaos",
        metavar="NAME",
        default=None,
        help="record a chaos scenario instead (see `repro chaos --list`)",
    )
    flight.add_argument(
        "--category",
        action="append",
        default=None,
        help="keep only these event categories (repeatable): "
        "net, pbft, dissem, archival, kernel",
    )
    flight.add_argument(
        "--limit", type=int, default=None, help="show only the last N events"
    )
    flight.add_argument(
        "--capacity", type=int, default=4096, help="ring-buffer size"
    )
    flight.add_argument(
        "--kernel",
        action="store_true",
        help="also record kernel schedule/fire events (noisy)",
    )
    flight.add_argument(
        "--json", action="store_true", help="emit the dump as JSON"
    )
    flight.add_argument(
        "--export-perfetto",
        metavar="PATH",
        default=None,
        help="also write the run as Chrome trace-event JSON, viewable "
        "at ui.perfetto.dev (byte-identical across same-seed runs)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection scenarios with invariant checking",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, help="master seed; replays bit-identically"
    )
    chaos.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS) + ["all"],
        default="all",
        help="which scenario to run (default: all)",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    chaos.add_argument(
        "--intensity",
        type=float,
        default=0.3,
        help="fault severity dial in [0,1]: drop rates, crash fractions",
    )
    chaos.add_argument(
        "--duration",
        type=float,
        default=60_000.0,
        help="fault window length in virtual ms",
    )
    chaos.add_argument(
        "--no-recovery",
        action="store_true",
        help="force the self-healing recovery layer off (the recovery "
        "scenarios are then expected to fail their invariant oracle)",
    )
    chaos.add_argument(
        "--trace",
        action="store_true",
        help="print the event trace even for passing scenarios",
    )
    chaos.add_argument(
        "--json", action="store_true", help="emit reports as JSON"
    )
    chaos.add_argument(
        "--profile",
        action="store_true",
        help="run under the kernel profiler and print the attribution "
        "table per scenario",
    )
    chaos.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="OP:pQ:MS",
        help="SLO threshold judged as an invariant, e.g. read:p95:2000 "
        "(repeatable)",
    )
    chaos.add_argument(
        "--export-dir",
        metavar="DIR",
        default=None,
        help="write <scenario>-<seed>.perfetto.json for every failing "
        "scenario into DIR (CI uploads these as artifacts)",
    )

    rings = sub.add_parser(
        "rings",
        help="multi-ring control plane: directory, membership, commits",
    )
    rings.add_argument("--seed", type=int, default=0)
    rings.add_argument(
        "--ring-count",
        type=int,
        default=2,
        help="GUID-range shards, each served by its own inner ring",
    )
    rings.add_argument(
        "--updates",
        type=int,
        default=2,
        help="updates to commit per shard before printing stats",
    )
    rings.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    profile = sub.add_parser(
        "profile",
        help="kernel wall-time attribution for a chaos scenario",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="mid-handoff-crash",
        help="chaos scenario to profile (default: mid-handoff-crash)",
    )
    profile.add_argument(
        "--top", type=int, default=10, help="hot buckets to show"
    )
    profile.add_argument(
        "--json", action="store_true", help="emit the full snapshot as JSON"
    )

    slo = sub.add_parser(
        "slo",
        help="per-operation latency percentiles with SLO verdicts",
    )
    slo.add_argument("--seed", type=int, default=42)
    slo.add_argument(
        "--writes", type=int, default=4, help="updates to drive"
    )
    slo.add_argument("--reads", type=int, default=4, help="reads to drive")
    slo.add_argument(
        "--threshold",
        action="append",
        default=None,
        metavar="OP:pQ:MS",
        help="SLO limit, e.g. read:p95:2000 or update:p99:30000 "
        "(repeatable); exit 1 when any is exceeded",
    )
    slo.add_argument(
        "--chaos",
        metavar="NAME",
        default=None,
        help="judge a chaos scenario's operations instead of driving "
        "the built-in workload",
    )
    slo.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    health = sub.add_parser(
        "health",
        help="control-plane health snapshot (always JSON)",
    )
    health.add_argument("--seed", type=int, default=0)
    health.add_argument(
        "--ring-count",
        type=int,
        default=2,
        help="GUID-range shards in the control plane",
    )
    health.add_argument(
        "--updates",
        type=int,
        default=1,
        help="updates to commit per shard before snapshotting",
    )
    health.add_argument(
        "--crash",
        type=int,
        default=0,
        metavar="N",
        help="crash N stub nodes first, so degraded/suspected fields "
        "have something to report (enables the recovery layer)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="seed-parallel chaos or bench sweeps (opt-in multiprocessing)",
    )
    sweep.add_argument(
        "--kind",
        choices=("chaos", "bench"),
        default="chaos",
        help="what to sweep (default: chaos)",
    )
    sweep.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS) + ["all"],
        default="all",
        help="chaos scenario to sweep (default: all)",
    )
    sweep.add_argument(
        "--bench",
        default="events_per_second",
        help="bench name for --kind bench (see benchmarks/harness.py list)",
    )
    sweep.add_argument(
        "--seeds",
        default="0-3",
        metavar="SPEC",
        help='seed list: "0-7", "0,3,11", or a single seed (default 0-3)',
    )
    sweep.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes; 1 (default) runs inline with no "
        "multiprocessing -- the byte-identical reference mode",
    )
    sweep.add_argument(
        "--fast", action="store_true", help="fast bench variants"
    )
    sweep.add_argument(
        "--json", action="store_true", help="emit the merged result as JSON"
    )

    return parser


def _parse_slo_thresholds(
    entries: list[str] | None,
) -> dict[str, dict[str, float]]:
    """``["read:p95:2000", ...]`` -> ``{"read": {"p95": 2000.0}}``."""
    thresholds: dict[str, dict[str, float]] = {}
    for entry in entries or []:
        parts = entry.split(":")
        if len(parts) != 3:
            raise SystemExit(
                f"bad SLO spec {entry!r}; expected OP:pQ:LIMIT_MS"
            )
        op, qname, limit = parts
        try:
            thresholds.setdefault(op, {})[qname] = float(limit)
        except ValueError:
            raise SystemExit(f"bad SLO limit in {entry!r}") from None
    return thresholds


def _parse_quantiles(spec: str | None) -> tuple[float, ...] | None:
    if spec is None:
        return None
    try:
        return tuple(float(q) for q in spec.split(","))
    except ValueError:
        raise SystemExit(f"bad quantile list {spec!r}") from None


def cmd_demo(args: argparse.Namespace) -> int:
    print(f"Building deployment (seed={args.seed})...")
    system = OceanStoreSystem(
        DeploymentConfig(
            seed=args.seed,
            topology=TopologyParams(
                transit_nodes=4, stubs_per_transit=2, nodes_per_stub=5
            ),
        )
    )
    print(f"  {len(system.servers)} servers; inner ring {system.ring_nodes}")
    alice = make_client(system, "alice", seed=args.seed + 1)
    obj = alice.create_object("demo-object")
    result = alice.write(obj, b"hello from the command line")
    print(f"  write committed: {result.committed} (version {result.new_version})")
    print(f"  read back: {alice.read(obj)!r}")
    state = system.restore_from_archive(obj.guid, 1)
    print(f"  archival restore: {obj.codec.read_document(state.data)!r}")
    print(f"  network: {system.network.stats_total_messages} messages, "
          f"{system.network.stats_total_bytes} bytes")
    return 0


def cmd_topology(args: argparse.Namespace) -> int:
    config = DeploymentConfig(
        seed=args.seed,
        topology=TopologyParams(
            transit_nodes=args.transit,
            stubs_per_transit=args.stubs,
            nodes_per_stub=args.nodes_per_stub,
        ),
    )
    system = OceanStoreSystem(config)
    transit = [n for n, d in system.graph.nodes(data=True) if d["kind"] == "transit"]
    stub = [n for n, d in system.graph.nodes(data=True) if d["kind"] == "stub"]
    print(f"servers: {len(system.servers)} ({len(transit)} transit, {len(stub)} stub)")
    print(f"edges: {system.graph.number_of_edges()}")
    print(f"inner ring (n={config.ring_size}, m={config.byzantine_m}): "
          f"{system.ring_nodes}")
    print(f"location: {config.salts} salted roots, Bloom depth "
          f"{config.bloom_depth} x {config.bloom_width} bits")
    print(f"archival: {config.archival_k}-of-{config.archival_n} Reed-Solomon")
    return 0


def cmd_reliability(args: argparse.Namespace) -> int:
    n = args.machines
    m = int(n * args.down_fraction)
    rep = replication_availability(n, m, replicas=2)
    er = erasure_availability(n, m, fragments=args.fragments, rate=args.rate)
    print(f"machines={n}, down={m} ({args.down_fraction:.0%})")
    print(f"  2x replication:      P={rep:.6f}  ({nines(rep):.1f} nines)")
    print(f"  {args.fragments} fragments @ rate {args.rate}: "
          f"P={er:.10f}  ({nines(er):.1f} nines)")
    return 0


def cmd_costmodel(args: argparse.Namespace) -> int:
    if args.fit:
        return _costmodel_fit(args)
    n = replicas_for_faults(args.faults)
    print(f"m={args.faults} -> n={n} replicas")
    print(f"{'update size':>12} | normalized cost b/(u*n)")
    for size in (100, 1_000, 4_000, 10_000, 100_000, 1_000_000):
        print(f"{size:>11}B | {normalized_cost(size, n):.3f}")
    return 0


def _costmodel_fit(args: argparse.Namespace) -> int:
    """Measure real simulated traffic and fit the Figure 6 equation."""
    from repro.consistency import fit_cost_model, measure_sweep

    u = max(1, args.updates_per_round)
    measurements = measure_sweep(update_size=args.update_size, seed=args.seed)
    fit = fit_cost_model(
        [(t.n, t.update_bytes, t.total_bytes) for t in measurements]
    )
    batched = None
    batched_fit = None
    if u > 1:
        # Same workload twice: u updates one-per-round vs u per round.
        # Both fits are per *update*, so the c1 ratio is the measured
        # quadratic-term amortization of batching.
        unbatched_u = measure_sweep(
            update_size=args.update_size, seed=args.seed, updates=u, batch_size=1
        )
        fit = fit_cost_model(
            [(t.n, t.update_bytes, t.per_update_bytes) for t in unbatched_u]
        )
        batched = measure_sweep(
            update_size=args.update_size, seed=args.seed, updates=u, batch_size=u
        )
        batched_fit = fit_cost_model(
            [(t.n, t.update_bytes, t.per_update_bytes) for t in batched]
        )
    if args.json:
        report = {
            "fit": fit.to_dict(),
            "measurements": [t.to_dict() for t in measurements],
        }
        if batched_fit is not None and batched is not None:
            report["updates_per_round"] = u
            report["batched_fit"] = batched_fit.to_dict()
            report["batched_measurements"] = [t.to_dict() for t in batched]
            report["c1_amortization"] = batched_fit.c1 / fit.c1
        print(json.dumps(report, indent=2))
        ok = fit.quadratic_ok and (batched_fit is None or batched_fit.quadratic_ok)
        return 0 if ok else 1
    print(f"measured one {args.update_size}B update per ring (seed={args.seed}):")
    print(f"{'n':>4} {'messages':>9} {'bytes':>10}  per-phase messages")
    for t in measurements:
        phases = t.phase_report.get("pbft", {})
        detail = " ".join(
            f"{ph}={v['messages']}" for ph, v in sorted(phases.items())
        )
        print(f"{t.n:>4} {t.total_messages:>9} {t.total_bytes:>10}  {detail}")
    print()
    print("fit to b = c1*n^2 + (u + c2)*n + c3:")
    print(f"  c1={fit.c1:.1f}B  c2={fit.c2:.1f}B  c3={fit.c3:.1f}B")
    print(f"  max relative error: {fit.max_rel_error:.2%}")
    n_max = max(t.n for t in measurements)
    share = fit.quadratic_share(n_max, float(args.update_size))
    print(f"  quadratic share at n={n_max}: {share:.1%} of predicted bytes")
    if batched_fit is not None and batched is not None:
        print()
        print(f"batched agreement at {u} updates per round (per-update fit):")
        print(f"{'n':>4} {'messages':>9} {'bytes':>10}  per-update bytes")
        for t in batched:
            print(
                f"{t.n:>4} {t.total_messages:>9} {t.total_bytes:>10}  "
                f"{t.per_update_bytes:>10.0f}"
            )
        print(
            f"  c1={batched_fit.c1:.1f}B  c2={batched_fit.c2:.1f}B  "
            f"c3={batched_fit.c3:.1f}B"
        )
        ratio = batched_fit.c1 / fit.c1 if fit.c1 else float("inf")
        print(
            f"  quadratic-term amortization: c1 {fit.c1:.1f} -> "
            f"{batched_fit.c1:.1f} B/update ({ratio:.1%} of unbatched; "
            f"ideal 1/u = {1 / u:.1%})"
        )
    ok = fit.quadratic_ok and (batched_fit is None or batched_fit.quadratic_ok)
    if ok:
        print("  quadratic term OK (paper: c1 'on the order of 100 bytes')")
        return 0
    print(
        f"  DEVIATION: fit misses tolerance {fit.tolerance:.0%} or c1 <= 0 -- "
        "the measured traffic no longer follows the paper's equation"
    )
    return 1


def _scenario_update_path(system: OceanStoreSystem, seed: int) -> str:
    """One client write, traced end to end: Bloom lookup, PBFT phases,
    dissemination push, and archival encode all under a single root."""
    alice = make_client(system, "alice", seed=seed + 1)
    obj = alice.create_object("traced-object")
    system.settle()
    system.telemetry.reset()  # drop setup noise; trace the update alone
    with system.telemetry.span("scenario.update-path"):
        result = alice.write(obj, b"telemetry scenario payload")
        system.settle()
    return f"write committed: {result.committed} (version {result.new_version})"


def _scenario_read_path(system: OceanStoreSystem, seed: int) -> str:
    """A committed write followed by a traced read (two-tier location)."""
    alice = make_client(system, "alice", seed=seed + 1)
    obj = alice.create_object("traced-object")
    alice.write(obj, b"telemetry scenario payload")
    system.settle()
    system.telemetry.reset()
    with system.telemetry.span("scenario.read-path"):
        data = alice.read(obj)
        system.settle()
    return f"read {len(data)} bytes"


_SCENARIOS = {
    "update-path": _scenario_update_path,
    "read-path": _scenario_read_path,
}


def _print_metrics_table(export: dict) -> None:
    counters = export.get("counters", {})
    gauges = export.get("gauges", {})
    histograms = export.get("histograms", {})
    if counters:
        print("counters:")
        width = max(len(k) for k in counters)
        for name in sorted(counters):
            print(f"  {name:<{width}}  {counters[name]}")
    if gauges:
        print("gauges:")
        width = max(len(k) for k in gauges)
        for name in sorted(gauges):
            print(f"  {name:<{width}}  {gauges[name]}")
    if histograms:
        print("histograms:")
        width = max(len(k) for k in histograms)
        for name in sorted(histograms):
            s = histograms[name]
            # Quantile columns follow the configured list, whatever it is.
            cells = " ".join(
                f"{k}={s[k]:.2f}" for k in s if k.startswith("p")
            )
            print(
                f"  {name:<{width}}  n={int(s['count'])} mean={s['mean']:.2f} "
                f"{cells} max={s['max']:.2f}"
            )


def cmd_telemetry(args: argparse.Namespace) -> int:
    quantiles = _parse_quantiles(args.quantiles)
    telemetry_config = (
        TelemetryConfig(enabled=True)
        if quantiles is None
        else TelemetryConfig(enabled=True, quantiles=quantiles)
    )
    system = OceanStoreSystem(
        DeploymentConfig(
            seed=args.seed,
            topology=TopologyParams(
                transit_nodes=4, stubs_per_transit=2, nodes_per_stub=5
            ),
            telemetry=telemetry_config,
        )
    )
    status = _SCENARIOS[args.scenario](system, args.seed)
    if args.json:
        print(status, file=sys.stderr)
        print(json.dumps(system.telemetry.export(spans=True), indent=2))
        return 0
    print(status)
    print()
    print("trace:")
    print(system.telemetry.render_spans(max_depth=args.max_depth))
    print()
    _print_metrics_table(system.telemetry.export())
    return 0


def cmd_flightrec(args: argparse.Namespace) -> int:
    if args.chaos is not None:
        # Chaos deployments own their telemetry; the report carries the
        # captured timeline (category/limit filters apply to the
        # instrumented scenarios, which expose the live recorder).
        report = run_scenario(args.chaos, seed=args.seed, capture_flight=True)
        print(
            f"{'PASS' if report.passed else 'FAIL'}  {report.scenario}  "
            f"seed={report.seed}",
            file=sys.stderr,
        )
        print(report.flight_dump)
        if args.export_perfetto is not None:
            Path(args.export_perfetto).write_text(report.perfetto)
            print(
                f"perfetto trace written to {args.export_perfetto}",
                file=sys.stderr,
            )
        return 0 if report.passed else 1
    system = OceanStoreSystem(
        DeploymentConfig(
            seed=args.seed,
            topology=TopologyParams(
                transit_nodes=4, stubs_per_transit=2, nodes_per_stub=5
            ),
            telemetry=TelemetryConfig(
                enabled=True,
                flight_capacity=args.capacity,
                flight_kernel=args.kernel,
            ),
        )
    )
    status = _SCENARIOS[args.scenario](system, args.seed)
    recorder = system.telemetry.flight
    assert recorder is not None
    if args.export_perfetto is not None:
        Path(args.export_perfetto).write_text(
            export_telemetry(system.telemetry)
        )
        print(
            f"perfetto trace written to {args.export_perfetto}",
            file=sys.stderr,
        )
    if args.json:
        print(status, file=sys.stderr)
        print(recorder.dump_json(categories=args.category))
        return 0
    print(status, file=sys.stderr)
    print(recorder.render(categories=args.category, limit=args.limit))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.list:
        descriptions = scenario_descriptions()
        width = max(len(name) for name in descriptions)
        for name, description in descriptions.items():
            print(f"  {name:<{width}}  {description}")
        return 0
    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    chaos_config = ChaosConfig(
        enabled=True,
        intensity=args.intensity,
        duration_ms=args.duration,
        recovery=False if args.no_recovery else None,
        profile=args.profile,
        slo_thresholds=_parse_slo_thresholds(args.slo),
    )
    reports = [
        run_scenario(name, seed=args.seed, chaos=chaos_config)
        for name in names
    ]
    if args.export_dir is not None:
        export_dir = Path(args.export_dir)
        export_dir.mkdir(parents=True, exist_ok=True)
        for report in reports:
            if report.perfetto:
                target = export_dir / (
                    f"{report.scenario}-{report.seed}.perfetto.json"
                )
                target.write_text(report.perfetto)
                print(f"perfetto trace written to {target}", file=sys.stderr)
    if args.json:
        print(json.dumps([report.to_dict() for report in reports], indent=2))
    else:
        for report in reports:
            print(report.render(include_trace=args.trace))
            if args.profile and report.profile is not None:
                print(render_snapshot(report.profile))
            print()
        passed = sum(1 for r in reports if r.passed)
        print(f"{passed}/{len(reports)} scenarios passed (seed {args.seed})")
    return 0 if all(r.passed for r in reports) else 1


def cmd_rings(args: argparse.Namespace) -> int:
    ring_count = args.ring_count
    system = OceanStoreSystem(
        DeploymentConfig(
            seed=args.seed,
            ring_count=ring_count,
            topology=TopologyParams(
                transit_nodes=max(8, 4 * ring_count),
                stubs_per_transit=1,
                nodes_per_stub=2,
            ),
            archive_every_commit=False,
        )
    )
    author = make_principal(
        "rings-author", random.Random(args.seed + 7), bits=256
    )
    # One object per shard, found by deterministic name search, so every
    # ring has commits to show.
    guid_by_shard = {}
    name_index = 0
    while len(guid_by_shard) < ring_count:
        guid = object_guid(author.public_key, f"rings-{name_index}")
        name_index += 1
        shard_id = system.rings.shard_of(guid).shard_id
        if shard_id in guid_by_shard:
            continue
        guid_by_shard[shard_id] = guid
        system.create_object(guid)
    system.settle()
    stubs = sorted(
        n for n, d in system.graph.nodes(data=True) if d["kind"] == "stub"
    )
    for shard_id in sorted(guid_by_shard):
        for i in range(args.updates):
            update = make_update(
                author,
                guid_by_shard[shard_id],
                [
                    UpdateBranch(
                        TruePredicate(),
                        (AppendBlock(f"shard-{shard_id}-u{i}".encode()),),
                    )
                ],
                float(i),
            )
            system.submit_update(stubs[shard_id % len(stubs)], update)
    system.settle()
    directory = system.ring_directory
    report = {
        "ring_count": ring_count,
        "sharded": system.rings.sharded,
        "directory": [
            {
                "shard": d.shard_id,
                "epoch": d.epoch,
                "range": d.range.describe(),
                "members": list(d.members),
                "contact": d.contact,
            }
            for d in directory.entries()
        ],
        "directory_stats": {
            "resolves": directory.stats_resolves,
            "mesh_hits": directory.stats_mesh_hits,
            "fallbacks": directory.stats_fallbacks,
        },
        "commits": system.rings.commit_stats(),
    }
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(f"control plane: {ring_count} ring(s), "
          f"{'sharded' if system.rings.sharded else 'single global ring'}")
    print("directory:")
    for entry in report["directory"]:
        print(f"  shard {entry['shard']} epoch {entry['epoch']}  "
              f"{entry['range']}")
        print(f"    members {entry['members']} (contact {entry['contact']})")
    stats = report["directory_stats"]
    print(f"  resolves: {stats['resolves']} "
          f"({stats['mesh_hits']} via mesh, {stats['fallbacks']} fallback)")
    print("per-ring commits:")
    for row in report["commits"]:
        retired = (
            f", retired epochs {row['retired_epochs']}"
            if row["retired_epochs"]
            else ""
        )
        print(f"  shard {row['shard']} epoch {row['epoch']}: "
              f"{row['committed']} committed{retired}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    report = run_scenario(
        args.scenario, seed=args.seed, chaos=ChaosConfig(profile=True)
    )
    print(
        f"{'PASS' if report.passed else 'FAIL'}  {report.scenario}  "
        f"seed={report.seed}",
        file=sys.stderr,
    )
    if report.profile is None:
        print("no events profiled", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.profile, indent=2))
    else:
        print(render_snapshot(report.profile, top=args.top))
    return 0 if report.passed else 1


def cmd_slo(args: argparse.Namespace) -> int:
    thresholds = _parse_slo_thresholds(args.threshold)
    if args.chaos is not None:
        report = run_scenario(
            args.chaos,
            seed=args.seed,
            chaos=ChaosConfig(slo_thresholds=thresholds),
        )
        print(
            f"{'PASS' if report.passed else 'FAIL'}  {report.scenario}  "
            f"seed={report.seed}",
            file=sys.stderr,
        )
        if args.json:
            print(json.dumps(report.slo or {}, indent=2))
            return 0 if report.passed else 1
        if report.slo is None:
            print("no operations recorded")
            return 0 if report.passed else 1
        width = max(len(name) for name in report.slo)
        for name, row in report.slo.items():
            cells = " ".join(
                f"{k}={row[k]:.1f}"
                for k in row
                if k not in ("count", "min")
            )
            print(f"  {name:<{width}}  n={int(row['count'])} {cells}")
        for violation in report.invariants.violations:
            if violation.invariant == "operation-slo":
                print(f"  FAIL  {violation.detail}")
        return 0 if report.passed else 1
    # Built-in workload: one object, N writes, N reads, end to end.
    system = OceanStoreSystem(
        DeploymentConfig(
            seed=args.seed,
            topology=TopologyParams(
                transit_nodes=4, stubs_per_transit=2, nodes_per_stub=5
            ),
            telemetry=TelemetryConfig(
                enabled=True, slo_thresholds=thresholds
            ),
        )
    )
    alice = make_client(system, "alice", seed=args.seed + 1)
    obj = alice.create_object("slo-object")
    for i in range(args.writes):
        alice.write(obj, f"slo-payload-{i}".encode())
    for _ in range(args.reads):
        alice.read(obj)
    system.settle()
    recorder = system.telemetry.slo
    assert recorder is not None
    if args.json:
        print(json.dumps(recorder.summary(), indent=2))
    else:
        print(recorder.render())
    return 1 if recorder.check() else 0


def cmd_health(args: argparse.Namespace) -> int:
    ring_count = args.ring_count
    system = OceanStoreSystem(
        DeploymentConfig(
            seed=args.seed,
            ring_count=ring_count,
            topology=TopologyParams(
                transit_nodes=max(8, 4 * ring_count),
                stubs_per_transit=1,
                nodes_per_stub=2,
            ),
            archive_every_commit=False,
            recovery=RecoveryConfig(enabled=args.crash > 0),
        )
    )
    author = make_principal(
        "health-author", random.Random(args.seed + 7), bits=256
    )
    guid_by_shard: dict[int, object] = {}
    name_index = 0
    while len(guid_by_shard) < ring_count:
        guid = object_guid(author.public_key, f"health-{name_index}")
        name_index += 1
        shard_id = system.rings.shard_of(guid).shard_id
        if shard_id in guid_by_shard:
            continue
        guid_by_shard[shard_id] = guid
        system.create_object(guid)
    system.settle()
    stubs = sorted(
        n for n, d in system.graph.nodes(data=True) if d["kind"] == "stub"
    )
    for shard_id in sorted(guid_by_shard):
        for i in range(args.updates):
            update = make_update(
                author,
                guid_by_shard[shard_id],
                [
                    UpdateBranch(
                        TruePredicate(),
                        (AppendBlock(f"health-{shard_id}-u{i}".encode()),),
                    )
                ],
                float(i),
            )
            system.submit_update(stubs[shard_id % len(stubs)], update)
    system.settle()
    if args.crash > 0:
        ring_nodes = {n for shard in system.rings.shards for n in shard.members}
        victims = [n for n in stubs if n not in ring_nodes][: args.crash]
        for node in victims:
            system.injector.crash(node)
        # Long enough for the failure detector to cross its suspicion
        # threshold, so the snapshot shows the suspects.
        system.settle(10_000.0)
    print(json.dumps(system.health_snapshot(), indent=2))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        merge_bench_results,
        merge_chaos_results,
        parse_seed_spec,
        sweep_bench,
        sweep_chaos,
    )

    try:
        seeds = parse_seed_spec(args.seeds)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.kind == "bench":
        results = sweep_bench(
            [args.bench], seeds, processes=args.processes, fast=args.fast
        )
        merged = merge_bench_results(results)
        if args.json:
            print(json.dumps(merged, indent=2, sort_keys=True))
        else:
            for name, envelopes in merged.items():
                print(f"{name}: {len(envelopes)} seeds")
                for envelope in envelopes:
                    wall = envelope["timings"].get("wall_seconds", 0.0)
                    print(f"  seed {envelope['meta']['seed']}: {wall:.2f}s wall")
        return 0
    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    results = sweep_chaos(names, seeds, processes=args.processes)
    merged = merge_chaos_results(results)
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        for r in results:
            status = "ok" if r["passed"] else "FAIL"
            print(
                f"  {r['scenario']:<24} seed {r['seed']:<4} {status}  "
                f"{r['trace_digest'][:16]}"
            )
        print(
            f"{merged['passed']}/{merged['total']} tasks passed "
            f"({args.processes} process(es))"
        )
    return 0 if merged["all_passed"] else 1


_COMMANDS = {
    "demo": cmd_demo,
    "topology": cmd_topology,
    "reliability": cmd_reliability,
    "costmodel": cmd_costmodel,
    "telemetry": cmd_telemetry,
    "flightrec": cmd_flightrec,
    "chaos": cmd_chaos,
    "rings": cmd_rings,
    "profile": cmd_profile,
    "slo": cmd_slo,
    "health": cmd_health,
    "sweep": cmd_sweep,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
