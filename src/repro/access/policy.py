"""Server-side write authorization checks.

Well-behaved servers verify every signed write against the object's ACL
before applying it (Section 4.2).  :class:`AccessChecker` holds the
per-object ACL state (the ACL, its owner certificate) and answers
"is this signed write allowed?" with reasons, so replicas can ignore
unauthorized updates and tests can assert on the failure mode.

The paper's note on defaults ("The specified ACL may be another object or
a value indicating a common default") is modelled with named default
policies: ``owner-only`` and ``public-write``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.access.acl import ACL, ACLCertificate, Privilege
from repro.crypto.rsa import PublicKey
from repro.util.ids import GUID


class WriteDecision(Enum):
    ALLOWED = "allowed"
    NO_ACL = "no-acl"
    BAD_CERTIFICATE = "bad-certificate"
    BAD_SIGNATURE = "bad-signature"
    NOT_AUTHORIZED = "not-authorized"


@dataclass(frozen=True, slots=True)
class CheckResult:
    decision: WriteDecision

    @property
    def allowed(self) -> bool:
        return self.decision is WriteDecision.ALLOWED


#: Sentinel default policies (the paper's "value indicating a common default").
DEFAULT_OWNER_ONLY = "owner-only"
DEFAULT_PUBLIC_WRITE = "public-write"


@dataclass
class _ObjectPolicy:
    acl: ACL | None
    certificate: ACLCertificate | None
    default: str | None
    owner_key: PublicKey


class AccessChecker:
    """Tracks ACL bindings and authorizes signed writes on a replica."""

    def __init__(self) -> None:
        self._policies: dict[GUID, _ObjectPolicy] = {}

    def install_default(
        self, object_guid: GUID, owner_key: PublicKey, default: str
    ) -> None:
        """Install a common-default policy for an object."""
        if default not in (DEFAULT_OWNER_ONLY, DEFAULT_PUBLIC_WRITE):
            raise ValueError(f"unknown default policy {default!r}")
        self._policies[object_guid] = _ObjectPolicy(
            acl=None, certificate=None, default=default, owner_key=owner_key
        )

    def install_acl(
        self, object_guid: GUID, acl: ACL, certificate: ACLCertificate
    ) -> bool:
        """Install an explicit ACL; rejected unless the owner certificate
        verifies and is not a rollback of a newer one."""
        if certificate.object_guid != object_guid or not certificate.verify(acl):
            return False
        existing = self._policies.get(object_guid)
        if (
            existing is not None
            and existing.certificate is not None
            and certificate.sequence <= existing.certificate.sequence
        ):
            return False  # rollback attempt
        if existing is not None and existing.owner_key != certificate.owner_key:
            return False  # only the original owner may swap the ACL
        self._policies[object_guid] = _ObjectPolicy(
            acl=acl,
            certificate=certificate,
            default=None,
            owner_key=certificate.owner_key,
        )
        return True

    def check_write(
        self,
        object_guid: GUID,
        signer_key: PublicKey,
        message: bytes,
        signature: bytes,
    ) -> CheckResult:
        """Full write check: signature validity, then ACL membership.

        The owner key is always authorized (ownership is baked into the
        self-certifying GUID; a forged "owner" key would not match it).
        """
        policy = self._policies.get(object_guid)
        if policy is None:
            return CheckResult(WriteDecision.NO_ACL)
        if not signer_key.verify(message, signature):
            return CheckResult(WriteDecision.BAD_SIGNATURE)
        if signer_key == policy.owner_key:
            return CheckResult(WriteDecision.ALLOWED)
        if policy.default == DEFAULT_PUBLIC_WRITE:
            return CheckResult(WriteDecision.ALLOWED)
        if policy.default == DEFAULT_OWNER_ONLY:
            return CheckResult(WriteDecision.NOT_AUTHORIZED)
        assert policy.acl is not None
        if policy.acl.allows(signer_key, Privilege.WRITE):
            return CheckResult(WriteDecision.ALLOWED)
        return CheckResult(WriteDecision.NOT_AUTHORIZED)

    def has_policy(self, object_guid: GUID) -> bool:
        return object_guid in self._policies
