"""Access control lists and write authorization (Section 4.2).

"To prevent unauthorized writes, we require that all writes be signed so
that well-behaved servers and clients can verify them against an access
control list (ACL).  The owner of an object can securely choose the ACL x
for an object foo by providing a signed certificate that translates to
'Owner says use ACL x for object foo' ... An ACL entry extending
privileges must describe the privilege granted and the signing key, but
not the explicit identity, of the privileged users.  We make such entries
publicly readable so that servers can check whether a write is allowed."

Key points modelled here:

* ACL entries grant privileges to *keys*, not identities.
* The binding object->ACL is itself a signed owner certificate, so
  untrusted servers can verify the whole authorization chain.
* A small set of privileges composes into richer policies (working
  groups are just ACLs granting WRITE to several keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Flag, auto

from repro.crypto.hashes import sha256
from repro.crypto.keys import Principal
from repro.crypto.rsa import PublicKey
from repro.util import serialization
from repro.util.ids import GUID


class Privilege(Flag):
    """Primitive privileges; richer policies compose these."""

    READ = auto()  # tracked for accounting; reads are enforced by keys
    WRITE = auto()
    ADMIN = auto()  # may replace the ACL itself

    @classmethod
    def parse(cls, text: str) -> "Privilege":
        result = cls(0)
        for part in text.split("|"):
            part = part.strip().upper()
            if not part:
                continue
            try:
                result |= cls[part]
            except KeyError:
                raise ValueError(f"unknown privilege {part!r}") from None
        return result


@dataclass(frozen=True, slots=True)
class ACLEntry:
    """Grants ``privilege`` to the holder of ``signer_key``.

    Per the paper, the entry names a signing key, not a user identity.
    """

    signer_key: PublicKey
    privilege: Privilege

    def covers(self, key: PublicKey, needed: Privilege) -> bool:
        return key == self.signer_key and (self.privilege & needed) == needed


@dataclass
class ACL:
    """A publicly readable list of privilege grants."""

    entries: list[ACLEntry] = field(default_factory=list)

    def grant(self, key: PublicKey, privilege: Privilege) -> None:
        self.entries.append(ACLEntry(signer_key=key, privilege=privilege))

    def revoke(self, key: PublicKey) -> int:
        """Remove all grants to ``key``; returns how many were removed."""
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.signer_key != key]
        return before - len(self.entries)

    def allows(self, key: PublicKey, needed: Privilege) -> bool:
        return any(entry.covers(key, needed) for entry in self.entries)

    def keys_with(self, privilege: Privilege) -> list[PublicKey]:
        return [
            e.signer_key for e in self.entries if (e.privilege & privilege) == privilege
        ]


@dataclass(frozen=True, slots=True)
class ACLCertificate:
    """Owner-signed binding: "Owner says use ACL x for object foo".

    ``sequence`` orders successive ACL choices so that servers can reject
    rollbacks to an older ACL.
    """

    object_guid: GUID
    owner_key: PublicKey
    acl_digest: bytes
    sequence: int
    signature: bytes

    @staticmethod
    def _message(
        object_guid: GUID, owner_key: PublicKey, acl_digest: bytes, sequence: int
    ) -> bytes:
        return serialization.encode(
            {
                "type": "acl-binding",
                "object": object_guid.to_bytes(),
                "owner": owner_key.to_bytes(),
                "acl": acl_digest,
                "sequence": sequence,
            }
        )

    @classmethod
    def issue(
        cls, owner: Principal, object_guid: GUID, acl: ACL, sequence: int = 0
    ) -> "ACLCertificate":
        digest = acl_digest(acl)
        message = cls._message(object_guid, owner.public_key, digest, sequence)
        return cls(
            object_guid=object_guid,
            owner_key=owner.public_key,
            acl_digest=digest,
            sequence=sequence,
            signature=owner.sign(message),
        )

    def verify(self, acl: ACL) -> bool:
        """Check the owner signature and that ``acl`` matches the digest."""
        if acl_digest(acl) != self.acl_digest:
            return False
        message = self._message(
            self.object_guid, self.owner_key, self.acl_digest, self.sequence
        )
        return self.owner_key.verify(message, self.signature)


def acl_digest(acl: ACL) -> bytes:
    """Canonical digest of an ACL's entries (order-insensitive)."""
    entries = sorted(
        (e.signer_key.to_bytes(), e.privilege.value) for e in acl.entries
    )
    return sha256(serialization.encode([list(pair) for pair in entries]))
