"""Access control: ACLs, owner certificates, server-side write checks.

Implements Section 4.2: reader restriction happens through key
distribution (see :mod:`repro.crypto.keys`); writer restriction happens
here, at well-behaved servers, by verifying signed writes against ACLs.
"""

from repro.access.acl import ACL, ACLCertificate, ACLEntry, Privilege, acl_digest
from repro.access.policy import (
    DEFAULT_OWNER_ONLY,
    DEFAULT_PUBLIC_WRITE,
    AccessChecker,
    CheckResult,
    WriteDecision,
)

__all__ = [
    "ACL",
    "ACLCertificate",
    "ACLEntry",
    "AccessChecker",
    "CheckResult",
    "DEFAULT_OWNER_ONLY",
    "DEFAULT_PUBLIC_WRITE",
    "Privilege",
    "WriteDecision",
    "acl_digest",
]
