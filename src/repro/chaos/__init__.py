"""Seeded chaos engineering for the reproduction.

OceanStore's core claims are fault-tolerance claims: Byzantine replicas
cannot break agreement (Section 4.4.3), the location mesh self-repairs
after churn (Section 4.3.3), and archival data survives "any m of n"
fragment loss (Section 4.5).  This package turns each claim into a
deterministic, replayable experiment:

* :mod:`repro.chaos.scenarios` -- the scenario registry and runner;
  ``run_scenario(name, seed)`` is a pure function of its arguments and
  emits a trace digest for bit-identical replay checking;
* :mod:`repro.chaos.invariants` -- the oracle: agreement safety, quorum
  feasibility, liveness, version monotonicity, routing reconvergence,
  and archival reconstructability.

The ``repro chaos`` CLI subcommand drives both.
"""

from repro.chaos.invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
    check_ring_agreement,
    check_ring_liveness,
    check_ring_quorum,
    check_version_log,
)
from repro.chaos.scenarios import (
    SCENARIOS,
    ChaosContext,
    ChaosReport,
    run_all,
    run_scenario,
    scenario_descriptions,
)

__all__ = [
    "ChaosContext",
    "ChaosReport",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "SCENARIOS",
    "check_ring_agreement",
    "check_ring_liveness",
    "check_ring_quorum",
    "check_version_log",
    "run_all",
    "run_scenario",
    "scenario_descriptions",
]
