"""System-wide invariants checked after every chaos scenario.

A fault-injection run is only as good as its oracle.  These checks
encode the promises the paper actually makes, so a scenario "passes"
exactly when the promises survive the injected faults:

* **agreement-safety** -- honest primary-tier replicas never execute
  divergent updates at the same sequence number (Section 4.4.3: the
  primary tier "cooperate[s] in a Byzantine agreement protocol to choose
  the final commit order");
* **quorum-feasibility** -- the ring's fault budget holds: more than
  (n-1)//3 marked-faulty replicas means the 3m+1 assumption (footnote 8)
  is violated and safety is no longer guaranteed;
* **liveness** -- every update a scenario expected to commit executed on
  every honest replica (checked only when the scenario says progress
  should have been possible);
* **version-monotonicity** -- committed versions in every version log,
  primary and secondary, form a strictly increasing chain ending at the
  head (Section 4.4.1's update log discipline);
* **routing-reconvergence** -- after churn stops and partitions heal,
  every object with a live replica is locatable from sampled live nodes
  (Section 4.3.3: the location mesh's soft state must reconverge);
* **archival-reconstruction** -- every archived version is still
  reconstructible from any k of its surviving fragments (Section 4.5's
  "retrieved correctly and completely, or not at all" erasure property);
* **ring-epoch-ownership** -- in a sharded control plane, the GUID-range
  shards partition the space exactly (no gaps, no overlaps), every
  shard's directory entry agrees with its live epoch and membership,
  memberships are disjoint, each current ring retains a live honest
  quorum, every dissemination-tree root is a member of the owning ring,
  and retired epochs stay strictly below the current one (the fence).
  Checked only when ``ring_count > 1``: a single-ring deployment has no
  ownership structure to break, and skipping it preserves pre-sharding
  chaos digests bit-for-bit.

The checker never mutates the system; reconvergence of soft state
(Bloom refresh, revives) is the *scenario's* job before it asks for a
verdict.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.archival.fragments import reconstruct_archival
from repro.archival.reed_solomon import CodingError
from repro.consistency.pbft import FaultMode, InnerRing
from repro.data.version_log import VersionLog
from repro.rings.sharding import GUID_SPACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import OceanStoreSystem


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One broken promise: which invariant, and the evidence."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


@dataclass(frozen=True, slots=True)
class InvariantReport:
    """Outcome of one full invariant pass."""

    checked: tuple[str, ...]
    violations: tuple[InvariantViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def violated_names(self) -> set[str]:
        return {v.invariant for v in self.violations}

    def render(self) -> str:
        lines = []
        for name in self.checked:
            broken = [v for v in self.violations if v.invariant == name]
            if not broken:
                lines.append(f"  ok    {name}")
            for violation in broken:
                lines.append(f"  FAIL  {name}: {violation.detail}")
        return "\n".join(lines)


# -- ring-level checks (usable on a bare InnerRing) -------------------------


def check_ring_agreement(ring: InnerRing) -> list[InvariantViolation]:
    """Honest replicas must agree on the digest executed at each slot."""
    violations = []
    executed: dict[int, dict[bytes, list[int]]] = {}
    for replica in ring.replicas:
        if replica.fault_mode is not FaultMode.HONEST:
            continue
        for seq, digest in replica.executed_by_seq.items():
            executed.setdefault(seq, {}).setdefault(digest, []).append(
                replica.index
            )
    for seq in sorted(executed):
        by_digest = executed[seq]
        if len(by_digest) > 1:
            detail = ", ".join(
                f"{digest[:4].hex()} on replicas {sorted(idxs)}"
                for digest, idxs in sorted(by_digest.items())
            )
            violations.append(
                InvariantViolation(
                    "agreement-safety",
                    f"divergent execution at seq {seq}: {detail}",
                )
            )
    return violations


def check_ring_quorum(ring: InnerRing) -> list[InvariantViolation]:
    """The 3m+1 assumption: marked faults within the tolerable budget."""
    faulty = ring.faulty_count()
    if faulty > ring.max_tolerable_faults:
        return [
            InvariantViolation(
                "quorum-feasibility",
                f"{faulty} faulty replicas but n={ring.n} tolerates only "
                f"{ring.max_tolerable_faults} (needs n >= {3 * faulty + 1})",
            )
        ]
    return []


def check_ring_liveness(
    ring: InnerRing, expected_update_ids: Iterable[bytes]
) -> list[InvariantViolation]:
    """Every expected update executed on every honest replica."""
    violations = []
    for update_id in expected_update_ids:
        missing = [
            r.index
            for r in ring.replicas
            if r.fault_mode is FaultMode.HONEST
            and update_id not in r.executed_updates
        ]
        if missing:
            violations.append(
                InvariantViolation(
                    "liveness",
                    f"update {update_id[:4].hex()} not executed on honest "
                    f"replicas {missing}",
                )
            )
    return violations


def check_version_log(log: VersionLog, where: str) -> list[InvariantViolation]:
    """Committed versions strictly increase and end at the head."""
    violations = []
    committed = [
        entry.resulting_version
        for entry in log.history()
        if entry.committed and entry.resulting_version is not None
    ]
    for prev, nxt in zip(committed, committed[1:]):
        if nxt <= prev:
            violations.append(
                InvariantViolation(
                    "version-monotonicity",
                    f"{where}: committed version went {prev} -> {nxt}",
                )
            )
    if committed and log.current_version != committed[-1]:
        violations.append(
            InvariantViolation(
                "version-monotonicity",
                f"{where}: head at v{log.current_version} but last "
                f"committed entry is v{committed[-1]}",
            )
        )
    return violations


# -- the system-level checker ----------------------------------------------


class InvariantChecker:
    """Runs every applicable invariant against a full deployment."""

    #: every invariant this checker knows how to evaluate
    ALL = (
        "agreement-safety",
        "quorum-feasibility",
        "liveness",
        "version-monotonicity",
        "routing-reconvergence",
        "archival-reconstruction",
        "ring-epoch-ownership",
    )

    def __init__(self, system: "OceanStoreSystem") -> None:
        self.system = system

    def check_all(
        self,
        rng: random.Random | None = None,
        expected_update_ids: Iterable[bytes] = (),
        expect_liveness: bool = True,
        skip: Iterable[str] = (),
    ) -> InvariantReport:
        """One full pass; ``rng`` drives fragment-subset sampling.

        ``skip`` names invariants a scenario deliberately leaves
        unchecked (e.g. routing reconvergence while nodes are still
        down on purpose); skipped names are absent from ``checked``.
        """
        rng = rng or random.Random(0)
        skipped = set(skip)
        if not expect_liveness:
            skipped.add("liveness")
        if not self.system.rings.sharded:
            # Single-ring deployments have no ownership structure; the
            # skip also keeps their reports (and chaos trace digests)
            # identical to the pre-sharding implementation.
            skipped.add("ring-epoch-ownership")
        checked = [name for name in self.ALL if name not in skipped]
        violations: list[InvariantViolation] = []
        if "agreement-safety" in checked:
            # Safety is forever: retired epochs are checked too.
            for ring in self.system.rings.all_rings_ever():
                violations += check_ring_agreement(ring)
        if "quorum-feasibility" in checked:
            for ring in self.system.rings.rings():
                violations += check_ring_quorum(ring)
        if "liveness" in checked:
            if self.system.rings.sharded:
                violations += self.check_sharded_liveness(expected_update_ids)
            else:
                violations += check_ring_liveness(
                    self.system.ring, expected_update_ids
                )
        if "version-monotonicity" in checked:
            violations += self.check_version_monotonicity()
        if "routing-reconvergence" in checked:
            violations += self.check_routing_reconvergence()
        if "archival-reconstruction" in checked:
            violations += self.check_archival_reconstruction(rng)
        if "ring-epoch-ownership" in checked:
            violations += self.check_ring_ownership()
        return InvariantReport(
            checked=tuple(checked), violations=tuple(violations)
        )

    def check_sharded_liveness(
        self, expected_update_ids: Iterable[bytes]
    ) -> list[InvariantViolation]:
        """Every expected update executed somewhere authoritative.

        In a sharded deployment an update is live when *some* epoch's
        ring (current or retired -- commits before a handoff live in the
        old ring's replicas) executed it on every honest member that is
        still reachable; members crashed by the network stay honest but
        can answer nothing, so they are exempt.
        """
        violations = []
        network = self.system.network
        rings = self.system.rings.all_rings_ever()
        for update_id in expected_update_ids:
            satisfied = False
            for ring in rings:
                reachable = [
                    r
                    for r in ring.replicas
                    if r.fault_mode is FaultMode.HONEST
                    and not network.is_down(r.network_id)
                ]
                if reachable and all(
                    update_id in r.executed_updates for r in reachable
                ):
                    satisfied = True
                    break
            if not satisfied:
                violations.append(
                    InvariantViolation(
                        "liveness",
                        f"update {update_id[:4].hex()} not fully executed "
                        f"by any epoch's ring",
                    )
                )
        return violations

    def check_ring_ownership(self) -> list[InvariantViolation]:
        """Every GUID owned by exactly one ring epoch (sharded only)."""
        violations = []

        def fail(detail: str) -> None:
            violations.append(
                InvariantViolation("ring-epoch-ownership", detail)
            )

        provider = self.system.rings
        network = self.system.network
        shards = provider.shards

        # 1. The ranges partition [0, 2^160) exactly.
        if shards[0].range.low != 0:
            fail(f"first range starts at {shards[0].range.low:#x}, not 0")
        if shards[-1].range.high != GUID_SPACE:
            fail("last range does not reach the top of the GUID space")
        for left, right in zip(shards, shards[1:]):
            if left.range.high != right.range.low:
                fail(
                    f"gap/overlap between shard {left.shard_id} and "
                    f"{right.shard_id}: {left.range.describe()} vs "
                    f"{right.range.describe()}"
                )

        # 2. Directory entries agree with the live epoch + membership.
        for shard in shards:
            entry = provider.directory.entry(shard.shard_id)
            if entry.epoch != shard.epoch:
                fail(
                    f"shard {shard.shard_id}: directory at epoch "
                    f"{entry.epoch}, provider at {shard.epoch}"
                )
            if tuple(entry.members) != tuple(shard.members):
                fail(
                    f"shard {shard.shard_id}: directory membership "
                    f"{list(entry.members)} != live {list(shard.members)}"
                )

        # 3. Memberships are disjoint: no node serves two rings.
        owner: dict = {}
        for shard in shards:
            for member in shard.members:
                if member in owner:
                    fail(
                        f"node {member} serves both shard {owner[member]} "
                        f"and shard {shard.shard_id}"
                    )
                owner[member] = shard.shard_id

        # 4. Each current ring retains a live honest quorum -- a range
        # below quorum is effectively orphaned (no one can commit it).
        for shard in shards:
            live = sum(
                1
                for replica in shard.ring.replicas
                if replica.fault_mode is FaultMode.HONEST
                and not network.is_down(replica.network_id)
            )
            if live < shard.ring.quorum:
                fail(
                    f"shard {shard.shard_id} epoch {shard.epoch}: only "
                    f"{live} live honest members < quorum "
                    f"{shard.ring.quorum}; range {shard.range.describe()} "
                    f"is orphaned"
                )

        # 5. Every created object resolves into exactly one shard, and
        # its dissemination root is a member of that shard's ring.
        for guid in self.system.tiers:
            holders = [s.shard_id for s in shards if guid in s.range]
            if len(holders) != 1:
                fail(f"object {guid} owned by shards {holders}, not one")
                continue
            root = self.system.tiers[guid].tree.root
            members = shards[holders[0]].members
            if root not in members:
                fail(
                    f"object {guid}: tree root {root} is not a member of "
                    f"owning shard {holders[0]} ({list(members)})"
                )

        # 6. Retired epochs stay strictly below the current epoch.
        for shard in shards:
            for epoch, _ in shard.retired:
                if epoch >= shard.epoch:
                    fail(
                        f"shard {shard.shard_id}: retired epoch {epoch} "
                        f">= current {shard.epoch}"
                    )
        return violations

    def check_version_monotonicity(self) -> list[InvariantViolation]:
        violations = []
        for node in sorted(self.system.servers):
            server = self.system.servers[node]
            for guid, obj in server.objects.items():
                violations += check_version_log(
                    obj.log, f"primary {guid} at node {node}"
                )
        for guid in self.system.tiers:
            tier = self.system.tiers[guid]
            for node in sorted(tier.replicas):
                violations += check_version_log(
                    tier.replicas[node].committed_log,
                    f"secondary {guid} at node {node}",
                )
        return violations

    def check_routing_reconvergence(
        self, sample_starts: int = 3
    ) -> list[InvariantViolation]:
        """Objects with live replicas must be locatable from live nodes."""
        violations = []
        network = self.system.network
        live_nodes = [
            n for n in sorted(network.nodes()) if not network.is_down(n)
        ]
        if not live_nodes:
            return violations
        # Spread the sampled start points across the node-id range so the
        # probes cross domains (deterministic: no RNG involved).
        stride = max(1, len(live_nodes) // sample_starts)
        starts = live_nodes[::stride][:sample_starts]
        for guid in self.system.tiers:
            holders = set(self.system.rings.members_for(guid)) | set(
                self.system.tiers[guid].replicas
            )
            live_holders = {n for n in holders if not network.is_down(n)}
            if not live_holders:
                continue  # nothing to find; not a routing failure
            for start in starts:
                result = self.system.location.locate(start, guid)
                if not result.found or result.replica_node is None:
                    violations.append(
                        InvariantViolation(
                            "routing-reconvergence",
                            f"object {guid} not locatable from node {start} "
                            f"despite live replicas {sorted(live_holders)}",
                        )
                    )
                elif network.is_down(result.replica_node):
                    violations.append(
                        InvariantViolation(
                            "routing-reconvergence",
                            f"lookup of {guid} from {start} returned downed "
                            f"node {result.replica_node}",
                        )
                    )
        return violations

    def check_archival_reconstruction(
        self, rng: random.Random
    ) -> list[InvariantViolation]:
        """Any k surviving fragments must rebuild each archived version."""
        violations = []
        network = self.system.network
        for guid_bytes in sorted(self.system.archive_index.objects):
            archival, code = self.system.archive_index.objects[guid_bytes]
            by_index: dict[int, object] = {}
            for node in sorted(self.system.servers):
                if network.is_down(node):
                    continue
                for fragment in self.system.servers[node].fragments.get(
                    guid_bytes
                ):
                    by_index.setdefault(fragment.index, fragment)
            label = archival.archival_guid
            merkle_root = archival.fragments[0].merkle_root
            if len(by_index) < code.k:
                # Fewer than k survivors is probabilistic data loss,
                # which the durability model accepts (Section 4.5).  The
                # coding claim is conditional -- *any* k survivors must
                # decode -- so the obligation here flips: decoding below
                # the bound must fail loudly, never produce data.
                remnants = [by_index[i] for i in sorted(by_index)]
                try:
                    reconstruct_archival(remnants, code, merkle_root)
                except CodingError:
                    continue
                violations.append(
                    InvariantViolation(
                        "archival-reconstruction",
                        f"archival {label}: decoded from {len(by_index)} "
                        f"< k={code.k} fragments (coding bound violated)",
                    )
                )
                continue
            sample = rng.sample(sorted(by_index), code.k)
            chosen = [by_index[i] for i in sample]
            try:
                reconstruct_archival(chosen, code, merkle_root)
            except CodingError as exc:
                violations.append(
                    InvariantViolation(
                        "archival-reconstruction",
                        f"archival {label}: k-subset {sample} failed to "
                        f"decode ({exc})",
                    )
                )
        return violations


__all__ = [
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "check_ring_agreement",
    "check_ring_liveness",
    "check_ring_quorum",
    "check_version_log",
]
