"""Deterministic chaos scenarios: seeded fault storms with an oracle.

Each scenario stands up a deployment, injects a specific class of
adversity -- Byzantine replicas, churn plus partitions, lossy links,
crashes during archival repair -- lets the simulation run, heals what
the scenario promises to heal, and then hands the system to the
invariant checker (:mod:`repro.chaos.invariants`).

Everything a scenario does derives from the master seed through named
:class:`~repro.util.rng.SeedSequence` streams, and the simulated clock
is the only clock, so ``run_scenario(name, seed)`` is a pure function:
the same seed reproduces the same event trace, the same fault pattern,
and the same verdict.  The trace digest in the resulting
:class:`ChaosReport` makes replay checkable bit-for-bit.

A scenario *passes* when the observed invariant violations are exactly
the ones it expects: usually none, but ``pbft-quorum-violation``
deliberately under-provisions the ring and passes only when the checker
catches it (the oracle is tested too).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.chaos.invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
    check_ring_agreement,
    check_ring_liveness,
    check_ring_quorum,
)
from repro.consistency.pbft import FaultMode, InnerRing
from repro.core.config import ChaosConfig, DeploymentConfig
from repro.core.system import OceanStoreSystem
from repro.crypto.keys import make_principal
from repro.data import AppendBlock, TruePredicate, UpdateBranch, make_update
from repro.data.update import Update
from repro.naming import object_guid
from repro.recovery import RecoveryConfig, RetryPolicy
from repro.sim.failures import ChurnParams
from repro.sim.faults import LinkFaultRule
from repro.sim.kernel import Kernel
from repro.sim.network import Network, TopologyParams
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.export import export_telemetry
from repro.util.ids import GUID
from repro.util.rng import SeedSequence


@dataclass
class ChaosReport:
    """Everything one scenario run produced, replayably."""

    scenario: str
    seed: int
    passed: bool
    invariants: InvariantReport
    expect_violations: tuple[str, ...]
    events: tuple[str, ...]
    #: sha256 over the scenario identity, event trace, and invariant
    #: outcome -- two runs match iff this matches
    trace_digest: str
    span_dump: str = ""
    #: flight-recorder timeline, auto-captured when the run fails (or on
    #: request) -- byte-identical across runs with the same master seed
    flight_dump: str = ""
    summary: str = ""
    #: kernel-profiler snapshot, present when the run profiled
    profile: dict | None = None
    #: per-operation SLO latency summary, present when recorded
    slo: dict | None = None
    #: Perfetto/Chrome trace-event JSON, auto-attached on invariant
    #: failure (or on request) -- byte-identical across same-seed runs
    perfetto: str = ""

    def to_dict(self) -> dict:
        out = {
            "scenario": self.scenario,
            "seed": self.seed,
            "passed": self.passed,
            "summary": self.summary,
            "trace_digest": self.trace_digest,
            "flight_dump": self.flight_dump,
            "expect_violations": list(self.expect_violations),
            "invariants": {
                "checked": list(self.invariants.checked),
                "violations": [
                    {"invariant": v.invariant, "detail": v.detail}
                    for v in self.invariants.violations
                ],
            },
            "events": list(self.events),
            "perfetto_attached": bool(self.perfetto),
        }
        if self.profile is not None:
            out["profile"] = self.profile
        if self.slo is not None:
            out["slo"] = self.slo
        return out

    def render(self, include_trace: bool = False) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"{status}  {self.scenario}  seed={self.seed}  "
            f"digest={self.trace_digest[:16]}"
        ]
        if self.summary:
            lines.append(f"  {self.summary}")
        if self.expect_violations:
            lines.append(
                "  expected violations: "
                + ", ".join(sorted(self.expect_violations))
            )
        lines.append(self.invariants.render())
        if include_trace or not self.passed:
            lines.append("  trace:")
            lines.extend(f"    {event}" for event in self.events)
        if not self.passed and self.span_dump:
            lines.append("  spans:")
            lines.extend(f"    {line}" for line in self.span_dump.splitlines())
        if not self.passed and self.flight_dump:
            lines.append("  flight recorder:")
            lines.extend(
                f"    {line}" for line in self.flight_dump.splitlines()
            )
        if not self.passed:
            lines.append(
                f"  replay: python -m repro chaos "
                f"--scenario {self.scenario} --seed {self.seed}"
            )
        return "\n".join(lines)


class ChaosContext:
    """Per-run state shared between a scenario and the runner."""

    def __init__(self, name: str, seed: int, chaos: ChaosConfig) -> None:
        self.name = name
        self.seed = seed
        self.chaos = chaos
        self.seeds = SeedSequence(seed)
        self.rng = self.seeds.derive(f"chaos:{name}")
        self.events: list[str] = []
        self.system: OceanStoreSystem | None = None
        self.ring: InnerRing | None = None
        self.kernel: Kernel | None = None
        self.telemetry = None
        self.expected_update_ids: list[bytes] = []
        self.expect_liveness = True
        #: invariant names this scenario *wants* violated (the oracle test)
        self.expect_violations: set[str] = set()
        #: invariant names deliberately not applicable to this scenario
        self.skip_invariants: set[str] = set()
        #: scenario-level checks merged into the final report
        self.extra_checked: list[str] = []
        self.extra_violations: list[InvariantViolation] = []

    # -- trace ----------------------------------------------------------

    def event(self, text: str) -> None:
        now = self.kernel.now if self.kernel is not None else 0.0
        self.events.append(f"{now:>10.1f}ms  {text}")

    # -- wiring ---------------------------------------------------------

    def attach_system(self, system: OceanStoreSystem) -> None:
        self.system = system
        self.ring = system.ring
        self.kernel = system.kernel
        self.telemetry = system.telemetry
        system.injector.on_crash(lambda node: self.event(f"node {node} crashed"))
        system.injector.on_revive(lambda node: self.event(f"node {node} revived"))

    def attach_ring(self, kernel: Kernel, ring: InnerRing, telemetry) -> None:
        self.ring = ring
        self.kernel = kernel
        self.telemetry = telemetry


# -- scenario building blocks ------------------------------------------------


def _standard_system(ctx: ChaosContext, **overrides) -> OceanStoreSystem:
    """A small-but-complete deployment with chaos + telemetry enabled."""
    params = dict(
        seed=ctx.seed,
        topology=TopologyParams(
            transit_nodes=4, stubs_per_transit=2, nodes_per_stub=4
        ),
        secondaries_per_object=3,
        archival_k=4,
        archival_n=8,
        # Recovery heartbeats add steady background traffic; a roomy
        # flight ring keeps the rare repair events (suspect, reparent,
        # republish) from being evicted before the postmortem dump.
        telemetry=TelemetryConfig(
            enabled=True,
            flight_capacity=65_536,
            profile=ctx.chaos.profile,
            slo_thresholds=ctx.chaos.slo_thresholds,
        ),
        chaos=ctx.chaos,
        batch_size=ctx.chaos.batch_size,
        batch_delay_ms=ctx.chaos.batch_delay_ms,
        pipeline_depth=ctx.chaos.pipeline_depth,
    )
    params.update(overrides)
    system = OceanStoreSystem(DeploymentConfig(**params))
    ctx.attach_system(system)
    ctx.event(
        f"deployment up: {len(system.servers)} servers, "
        f"ring {system.ring_nodes}"
    )
    return system


def _make_author(ctx: ChaosContext):
    return make_principal("chaos-author", ctx.seeds.derive("author"), bits=256)


def _new_object(ctx: ChaosContext, author, name: str) -> GUID:
    assert ctx.system is not None
    guid = object_guid(author.public_key, name)
    ctx.system.create_object(guid)
    ctx.event(f"object {name} created as {guid}")
    return guid


def _build_update(author, guid: GUID, payload: bytes, ts: float) -> Update:
    return make_update(
        author, guid, [UpdateBranch(TruePredicate(), (AppendBlock(payload),))], ts
    )


def _client_node(ctx: ChaosContext) -> int:
    """A deterministic stub node to submit from."""
    assert ctx.system is not None
    stubs = sorted(
        n
        for n, d in ctx.system.graph.nodes(data=True)
        if d["kind"] == "stub"
    )
    return ctx.rng.choice(stubs)


def _ring_executed(ring: InnerRing, update_id: bytes) -> bool:
    return any(
        update_id in r.executed_updates
        for r in ring.replicas
        if r.fault_mode is FaultMode.HONEST
    )


def _submit_until_executed(
    ctx: ChaosContext,
    client: int,
    update: Update,
    attempts: int = 5,
    settle_ms: float = 20_000.0,
) -> bool:
    """Submit with client-side retry (the paper's clients retry through
    faults; PBFT dedupes re-sent requests)."""
    assert ctx.system is not None
    short_id = update.update_id[:4].hex()
    for attempt in range(attempts):
        ctx.system.submit_update(client, update)
        ctx.event(
            f"update {short_id} submitted from node {client}"
            + (f" (retry {attempt})" if attempt else "")
        )
        ctx.system.settle(settle_ms)
        # The ring responsible for this update's GUID; at ring_count=1
        # this is exactly ``system.ring``.
        ring = ctx.system.rings.ring_for(update.object_guid)
        if _ring_executed(ring, update.update_id):
            ctx.event(f"update {short_id} executed by the honest ring")
            return True
    ctx.event(f"update {short_id} NOT executed after {attempts} attempts")
    return False


# -- registry ----------------------------------------------------------------

SCENARIOS: dict[str, Callable[[ChaosContext], None]] = {}


def scenario(name: str):
    def register(fn: Callable[[ChaosContext], None]):
        SCENARIOS[name] = fn
        return fn

    return register


def scenario_descriptions() -> dict[str, str]:
    return {
        name: (fn.__doc__ or "").strip().splitlines()[0]
        for name, fn in sorted(SCENARIOS.items())
    }


# -- PBFT under Byzantine replicas -------------------------------------------


def _pbft_byzantine(ctx: ChaosContext, mode: FaultMode) -> None:
    system = _standard_system(ctx)
    m = (
        ctx.chaos.byzantine
        if ctx.chaos.byzantine is not None
        else system.config.byzantine_m
    )
    n = system.ring.n
    for i in range(min(m, n)):
        index = n - 1 - i  # highest indices: view-0 leader stays honest
        system.ring.set_fault(index, mode)
        ctx.event(f"ring replica {index} marked {mode.value}")
    author = _make_author(ctx)
    guid = _new_object(ctx, author, "pbft-object")
    system.settle()
    client = _client_node(ctx)
    for i in range(3):
        update = _build_update(
            author, guid, f"payload-{i}".encode(), ts=float(i + 1)
        )
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update)
    ctx.event(
        f"ring committed order holds {len(system.ring.committed_order)} updates"
    )


@scenario("pbft-silent")
def _pbft_silent(ctx: ChaosContext) -> None:
    """m silent (crashed) replicas at n=3m+1: agreement must survive."""
    _pbft_byzantine(ctx, FaultMode.SILENT)


@scenario("pbft-equivocate")
def _pbft_equivocate(ctx: ChaosContext) -> None:
    """m equivocating replicas split their votes; quorums must not."""
    _pbft_byzantine(ctx, FaultMode.EQUIVOCATE)


@scenario("pbft-delay")
def _pbft_delay(ctx: ChaosContext) -> None:
    """m dawdling replicas send correct messages late."""
    _pbft_byzantine(ctx, FaultMode.DELAY)


@scenario("pbft-corrupt")
def _pbft_corrupt(ctx: ChaosContext) -> None:
    """m replicas garble every digest; honest verification rejects them."""
    _pbft_byzantine(ctx, FaultMode.CORRUPT)


@scenario("pbft-quorum-violation")
def _pbft_quorum_violation(ctx: ChaosContext) -> None:
    """An undersized ring (n=3m) with m silent replicas: the checker
    must detect the violated fault budget and the resulting stall."""
    m = ctx.chaos.byzantine if ctx.chaos.byzantine is not None else 1
    n = 3 * m  # one replica short of the 3m+1 requirement
    kernel = Kernel()
    telemetry = Telemetry.from_config(
        TelemetryConfig(enabled=True), clock=lambda: kernel.now
    )
    kernel.trace_wrapper = telemetry.wrap
    graph = nx.complete_graph(n + 1)  # replicas plus one client node
    nx.set_edge_attributes(graph, 50.0, "latency_ms")
    network = Network(kernel, graph, telemetry=telemetry)
    identity_rng = ctx.seeds.derive("ring-identities")
    principals = [
        make_principal(f"replica-{i}", identity_rng, bits=256) for i in range(n)
    ]
    ring = InnerRing(
        kernel,
        network,
        list(range(n)),
        principals,
        m=m,
        telemetry=telemetry,
        allow_unsafe_size=True,
        batch_size=ctx.chaos.batch_size,
        batch_delay_ms=ctx.chaos.batch_delay_ms,
        pipeline_depth=ctx.chaos.pipeline_depth,
    )
    ctx.attach_ring(kernel, ring, telemetry)
    ctx.event(f"undersized ring up: n={n} for m={m} (needs {3 * m + 1})")
    for i in range(m):
        ring.set_fault(n - 1 - i, FaultMode.SILENT)
        ctx.event(f"ring replica {n - 1 - i} marked silent")
    author = _make_author(ctx)
    guid = object_guid(author.public_key, "starved-object")
    update = _build_update(author, guid, b"doomed payload", ts=1.0)
    ctx.expected_update_ids.append(update.update_id)
    ring.submit(n, update)
    ctx.event(f"update {update.update_id[:4].hex()} submitted from node {n}")
    kernel.run(until=kernel.now + 30_000.0)
    executed = sum(
        1 for r in ring.replicas if update.update_id in r.executed_updates
    )
    ctx.event(f"executed on {executed} of {n} replicas")
    ctx.expect_violations = {"quorum-feasibility", "liveness"}


# -- location mesh under churn and partition ---------------------------------


@scenario("routing-churn")
def _routing_churn(ctx: ChaosContext) -> None:
    """Churn plus an asymmetric partition; location must reconverge
    once the storm passes (Section 4.3.3 soft-state repair)."""
    system = _standard_system(ctx)
    author = _make_author(ctx)
    client = _client_node(ctx)
    guids = []
    for i in range(3):
        guid = _new_object(ctx, author, f"churned-{i}")
        guids.append(guid)
        update = _build_update(author, guid, f"body-{i}".encode(), ts=1.0)
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update)

    stubs = sorted(
        n for n in system.network.nodes() if n not in system.ring_nodes
    )
    duration = ctx.chaos.duration_ms
    system.injector.start_churn(
        stubs,
        ChurnParams(
            mean_uptime_ms=duration / 3.0, mean_downtime_ms=duration / 6.0
        ),
    )
    ctx.event(f"churn started on {len(stubs)} non-ring nodes")
    half = len(stubs) // 2
    system.network.add_asymmetric_partition(set(stubs[:half]), set(stubs[half:]))
    ctx.event(
        f"asymmetric partition: {half} nodes cannot reach the other "
        f"{len(stubs) - half}"
    )
    for _ in range(3):
        system.settle(duration / 3.0)
        start = ctx.rng.choice(
            [n for n in stubs if not system.network.is_down(n)] or [client]
        )
        result = system.location.locate(start, ctx.rng.choice(guids))
        ctx.event(
            f"mid-storm lookup from node {start}: "
            + (f"hit at node {result.replica_node}" if result.found else "miss")
        )

    system.injector.stop_churn()
    system.network.heal_partitions()
    for node in stubs:
        system.injector.revive(node)
    ctx.event("healed: churn stopped, partitions removed, nodes revived")
    system.settle()
    system.probabilistic.converge()
    ctx.event("probabilistic tier reconverged")


# -- dissemination under message loss ----------------------------------------


@scenario("dissemination-loss")
def _dissemination_loss(ctx: ChaosContext) -> None:
    """Lossy links while updates commit and spread; the secondary tier
    must still converge once losses stop."""
    system = _standard_system(ctx)
    assert system.net_faults is not None
    author = _make_author(ctx)
    guid = _new_object(ctx, author, "lossy-object")
    system.settle()
    client = _client_node(ctx)

    window_end = system.kernel.now + ctx.chaos.duration_ms
    drop = min(ctx.chaos.intensity, 0.5)
    system.net_faults.add_rule(
        LinkFaultRule(
            start_ms=system.kernel.now,
            end_ms=window_end,
            drop=drop,
            duplicate=0.1,
            reorder=0.2,
            corrupt=0.05,
        )
    )
    ctx.event(
        f"lossy window open: drop={drop:.2f}, dup=0.10, reorder=0.20, "
        f"corrupt=0.05 until t={window_end:.0f}ms"
    )
    for i in range(3):
        update = _build_update(
            author, guid, f"lossy-{i}".encode(), ts=float(i + 1)
        )
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update, attempts=8)
    injector = system.net_faults
    ctx.event(
        f"fault stats: dropped={injector.stats_dropped} "
        f"duplicated={injector.stats_duplicated} "
        f"reordered={injector.stats_reordered} "
        f"corrupted={injector.stats_corrupted}"
    )
    if system.kernel.now < window_end:
        system.settle(window_end - system.kernel.now)
    ctx.event("lossy window closed")
    # Anti-entropy pairs replicas at random, so the number of rounds a
    # straggler needs is itself random; run until quiescent (bounded)
    # rather than a fixed count -- the claim is eventual convergence.
    rounds_used = 0
    for rounds_used in range(1, 13):
        system.run_epidemic_rounds(rounds=1)
        if all(
            tier.consistent_fraction() == 1.0
            for tier in system.tiers.values()
        ):
            break
    ctx.event(f"anti-entropy quiesced after {rounds_used} post-storm rounds")

    ctx.extra_checked.append("dissemination-convergence")
    for tier_guid in system.tiers:
        tier = system.tiers[tier_guid]
        fraction = tier.consistent_fraction()
        ctx.event(
            f"secondary tier for {tier_guid}: consistent fraction "
            f"{fraction:.2f}"
        )
        if fraction < 1.0:
            ctx.extra_violations.append(
                InvariantViolation(
                    "dissemination-convergence",
                    f"tier for {tier_guid} stuck at {fraction:.2f} "
                    "consistent after losses healed",
                )
            )


# -- self-healing recovery under crashes -------------------------------------


def _recovery_config(ctx: ChaosContext) -> RecoveryConfig:
    """Recovery knobs for the recovery scenarios: enabled unless the
    chaos config forces it off (that forcing is how tests show the
    oracle catching the *unrepaired* failures)."""
    enabled = True if ctx.chaos.recovery is None else ctx.chaos.recovery
    return RecoveryConfig(
        enabled=enabled,
        heartbeat_interval_ms=1_000.0,
        heartbeat_timeout_ms=600.0,
        suspicion_threshold=2,
        refresh_interval_ms=10_000.0,
    )


@scenario("orphaned-subtree")
def _orphaned_subtree(ctx: ChaosContext) -> None:
    """Crash a dissemination-tree parent mid-stream; recovery must
    reparent the orphaned subtree and catch it up via anti-entropy."""
    system = _standard_system(
        ctx,
        secondaries_per_object=6,
        dissemination_fanout=2,
        recovery=_recovery_config(ctx),
    )
    author = _make_author(ctx)
    guid = _new_object(ctx, author, "orphaned-object")
    system.settle()
    client = _client_node(ctx)
    first = _build_update(author, guid, b"before-the-crash", ts=1.0)
    ctx.expected_update_ids.append(first.update_id)
    _submit_until_executed(ctx, client, first)

    tier = system.tiers[guid]
    parents = [m for m in sorted(tier.replicas) if tier.tree.children(m)]
    victim = (
        max(parents, key=lambda m: (len(tier.tree.children(m)), -m))
        if parents
        else sorted(tier.replicas)[0]
    )
    orphans = tier.tree.children(victim)
    ctx.event(f"crashing tree parent {victim} (children {orphans})")
    system.injector.crash(victim)
    # Two more commits while the parent is dead: pushes into the
    # orphaned subtree are dropped on the floor.
    for i in (1, 2):
        update = _build_update(
            author, guid, f"past-the-corpse-{i}".encode(), ts=float(i + 1)
        )
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update)
    # Time for the detector to suspect and the tree to heal; no epidemic
    # rounds -- convergence must come from the repair path alone.
    system.settle(ctx.chaos.duration_ms)
    ctx.event(
        f"recovery window closed; tier holds {len(tier.replicas)} replicas"
    )

    ctx.extra_checked.append("dissemination-convergence")
    expected_seq = len(ctx.expected_update_ids) - 1
    for node in sorted(tier.replicas):
        if system.network.is_down(node):
            ctx.extra_violations.append(
                InvariantViolation(
                    "dissemination-convergence",
                    f"dead node {node} still registered in the secondary tier",
                )
            )
            continue
        through = tier.replicas[node].committed_through
        ctx.event(f"replica {node} committed through seq {through}")
        if through < expected_seq:
            ctx.extra_violations.append(
                InvariantViolation(
                    "dissemination-convergence",
                    f"replica {node} stuck at seq {through} < {expected_seq} "
                    "after the dead parent should have been repaired",
                )
            )


@scenario("dead-root-read")
def _dead_root_read(ctx: ChaosContext) -> None:
    """Kill the salted roots and wipe the pointer paths mid-read; the
    degradation ladder must keep the read serviceable and republish must
    restore locate-ability."""
    from repro.api.backend import UnknownObject

    system = _standard_system(ctx, recovery=_recovery_config(ctx))
    author = _make_author(ctx)
    guid = _new_object(ctx, author, "rooted-object")
    system.settle()
    client = _client_node(ctx)
    update = _build_update(author, guid, b"beneath-the-roots", ts=1.0)
    ctx.expected_update_ids.append(update.update_id)
    _submit_until_executed(ctx, client, update)

    # Soft-state catastrophe (a TTL-expiry storm): every Plaxton pointer
    # for every salted GUID vanishes, the probabilistic tier's neighbor
    # filters go blank, and each salt's root crashes unless it is a ring
    # member (the quorum must stay live).  Only republish can bring the
    # object back into the location infrastructure.
    salted = system.router.salted_guids(guid)
    for nid in sorted(system.mesh.nodes):
        node = system.mesh.nodes[nid]
        for salt in salted:
            node.pointers.pop(salt, None)
    for nid in sorted(system.network.nodes()):
        system.probabilistic._nodes[nid].neighbor_filters.clear()
    roots = sorted(set(system.router.roots_of(guid)))
    victims = [r for r in roots if r not in system.ring_nodes]
    for root in victims:
        system.injector.crash(root)
    ctx.event(
        f"pointer paths wiped for {len(salted)} salts; roots {roots}, "
        f"{len(victims)} crashed"
    )

    # A client read lands in the middle of the damage.  The ladder's
    # backoff settles are where the detector, eviction, republish, and
    # refresh loops get to run.
    policy = RetryPolicy(
        deadline_ms=30_000.0,
        max_attempts=5,
        backoff_base_ms=2_000.0,
        seed=ctx.seed,
    )
    try:
        state = system.read_degraded(
            guid,
            allow_tentative=True,
            min_version=0,
            client_node=client,
            retry=policy,
        )
        ctx.event(f"degraded read served version {state.version}")
    except UnknownObject:
        ctx.event("degraded read exhausted its deadline budget")
    system.settle(ctx.chaos.duration_ms)
    result = system.location.locate(client, guid)
    ctx.event(
        "post-storm locate: "
        + (f"hit at node {result.replica_node}" if result.found else "miss")
    )


@scenario("archival-crash-repair")
def _archival_crash_repair(ctx: ChaosContext) -> None:
    """Crash storms interleaved with repair sweeps; every archived
    version must stay reconstructible from surviving fragments."""
    system = _standard_system(ctx)
    author = _make_author(ctx)
    client = _client_node(ctx)
    for i in range(2):
        guid = _new_object(ctx, author, f"archived-{i}")
        update = _build_update(author, guid, f"fragile-{i}".encode(), ts=1.0)
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update)
    non_ring = sorted(
        n for n in system.network.nodes() if n not in system.ring_nodes
    )
    # Two half-strength storms with a repair sweep after each: the sweep
    # re-encodes any object below the safety threshold back to full
    # strength on surviving servers, so the second storm hits a repaired
    # population -- the race the paper's "slow sweep" is meant to win.
    last_reports = []
    for round_no in (1, 2):
        victims = system.injector.crash_fraction(
            non_ring, ctx.chaos.intensity / 2
        )
        ctx.event(
            f"crash storm {round_no}: {len(victims)} nodes down {victims}"
        )
        last_reports = system.sweeper.sweep()
        repaired = [r for r in last_reports if r.repaired]
        lost = [r for r in last_reports if r.lost]
        ctx.event(
            f"repair sweep {round_no}: {len(last_reports)} objects scanned, "
            f"{len(repaired)} repaired, {len(lost)} lost"
        )
        system.settle(10_000.0)
    # The sweeper's own verdict must match ground truth: an object it
    # wrote off as lost really had fewer than k live fragments.
    ctx.extra_checked.append("repair-accounting")
    for report in last_reports:
        archival, code = system.archive_index.objects[
            report.archival_guid_bytes
        ]
        if report.lost and report.live_fragments >= code.k:
            ctx.extra_violations.append(
                InvariantViolation(
                    "repair-accounting",
                    f"sweeper wrote off {archival.archival_guid} with "
                    f"{report.live_fragments} >= k={code.k} live fragments",
                )
            )
    # Nodes stay down on purpose: reconstruction must work from the
    # survivors alone.  Routing is exercised by routing-churn instead.
    ctx.skip_invariants.add("routing-reconvergence")
    ctx.event("leaving crashed nodes down for the survivor-only check")


# -- sharded control plane ---------------------------------------------------


def _objects_per_shard(ctx: ChaosContext, author, base: str) -> list[GUID]:
    """One object per shard, found by deterministic name search."""
    system = ctx.system
    assert system is not None
    found: dict[int, GUID] = {}
    i = 0
    while len(found) < system.rings.ring_count:
        guid = object_guid(author.public_key, f"{base}-{i}")
        shard_id = system.rings.shard_of(guid).shard_id
        if shard_id not in found:
            found[shard_id] = guid
            system.create_object(guid)
            ctx.event(
                f"object {base}-{i} created in shard {shard_id} as {guid}"
            )
        i += 1
    return [found[s] for s in sorted(found)]


@scenario("cross-shard-partition")
def _cross_shard_partition(ctx: ChaosContext) -> None:
    """Partition the two shards' rings from each other mid-write: each
    ring must keep committing its own GUID range independently."""
    system = _standard_system(
        ctx,
        ring_count=2,
        topology=TopologyParams(
            transit_nodes=8, stubs_per_transit=1, nodes_per_stub=3
        ),
    )
    author = _make_author(ctx)
    guids = _objects_per_shard(ctx, author, "cross-shard")
    system.settle()
    client = _client_node(ctx)
    for i, guid in enumerate(guids):
        update = _build_update(
            author, guid, f"before-partition-{i}".encode(), ts=float(i + 1)
        )
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update)

    shard_a, shard_b = system.rings.shards
    system.network.add_partition(set(shard_a.members), set(shard_b.members))
    ctx.event(
        f"partitioned ring {shard_a.members} from ring {shard_b.members}"
    )
    # Both shards must make progress while unable to talk to each other:
    # agreement is per-ring, so the partition between rings is invisible
    # to clients of either range.
    for i, guid in enumerate(guids):
        update = _build_update(
            author, guid, f"during-partition-{i}".encode(), ts=float(i + 10)
        )
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update)
    system.network.heal_partitions()
    ctx.event("partition healed")
    system.settle()
    system.probabilistic.converge()
    for row in system.rings.commit_stats():
        ctx.event(
            f"shard {row['shard']} epoch {row['epoch']}: "
            f"{row['committed']} committed"
        )


@scenario("mid-handoff-crash")
def _mid_handoff_crash(ctx: ChaosContext) -> None:
    """Crash a ring member, then the handoff coordinator mid-transfer:
    the watchdog must re-elect at a higher epoch and finish the handoff
    (with recovery disabled there is no handoff and the oracle fails)."""
    system = _standard_system(
        ctx,
        ring_count=2,
        topology=TopologyParams(
            transit_nodes=12, stubs_per_transit=1, nodes_per_stub=2
        ),
        recovery=_recovery_config(ctx),
    )
    if system.handoff is not None:
        # A wide drain window so the coordinator crash below lands while
        # the first handoff attempt is still in flight, and a short
        # watchdog so the retry happens within the scenario budget.
        system.handoff.drain_ms = 4_000.0
        system.handoff.timeout_ms = 8_000.0
    author = _make_author(ctx)
    guids = _objects_per_shard(ctx, author, "handoff")
    system.settle()
    client = _client_node(ctx)
    for i, guid in enumerate(guids):
        update = _build_update(
            author, guid, f"pre-crash-{i}".encode(), ts=float(i + 1)
        )
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update)

    shard = system.rings.shards[1]
    first_victim = shard.members[-1]
    coordinator = shard.members[0]
    system.injector.crash(first_victim)
    if system.handoff is not None:
        for _ in range(40):
            system.settle(500.0)
            if system.handoff.is_active(1):
                break
        ctx.event(
            "handoff active for shard 1; crashing its coordinator "
            f"(node {coordinator}) mid-transfer"
        )
    else:
        system.settle(6_000.0)
        ctx.event(
            f"no handoff manager (recovery off); crashing node {coordinator}"
        )
    system.injector.crash(coordinator)
    system.settle(60_000.0)

    # Progress after the dust settles: both shards must still commit.
    for i, guid in enumerate(guids):
        update = _build_update(
            author, guid, f"post-recovery-{i}".encode(), ts=float(i + 20)
        )
        ctx.expected_update_ids.append(update.update_id)
        _submit_until_executed(ctx, client, update, attempts=2, settle_ms=10_000.0)
    for row in system.rings.commit_stats():
        ctx.event(
            f"shard {row['shard']} epoch {row['epoch']} members "
            f"{row['members']}: {row['committed']} committed, retired "
            f"epochs {row['retired_epochs']}"
        )
    if system.handoff is not None:
        ctx.event(
            f"handoffs completed: {system.handoff.stats_handoffs}, "
            f"retries: {system.handoff.stats_retries}, fenced commits: "
            f"{system.rings.stats_fenced_commits}"
        )


# -- the runner --------------------------------------------------------------


def _trace_digest(
    name: str, seed: int, events: list[str], report: InvariantReport
) -> str:
    hasher = hashlib.sha256()
    hasher.update(f"{name}:{seed}".encode())
    for event in events:
        hasher.update(event.encode())
        hasher.update(b"\n")
    for checked in report.checked:
        hasher.update(checked.encode())
    for violation in report.violations:
        hasher.update(f"{violation.invariant}={violation.detail}".encode())
    return hasher.hexdigest()


def run_scenario(
    name: str,
    seed: int = 0,
    chaos: ChaosConfig | None = None,
    capture_flight: bool = False,
) -> ChaosReport:
    """Run one scenario deterministically and judge it.

    Returns a :class:`ChaosReport`; ``report.passed`` means observed
    invariant violations matched the scenario's expectations exactly.
    The flight-recorder timeline is captured into ``report.flight_dump``
    automatically on failure, or always with ``capture_flight=True``.
    """
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown chaos scenario {name!r} (known: {known})")
    chaos = dataclasses.replace(chaos or ChaosConfig(), enabled=True)
    ctx = ChaosContext(name, seed, chaos)
    SCENARIOS[name](ctx)

    if ctx.system is not None:
        checker = InvariantChecker(ctx.system)
        report = checker.check_all(
            rng=ctx.seeds.derive("invariant-sample"),
            expected_update_ids=tuple(ctx.expected_update_ids),
            expect_liveness=ctx.expect_liveness,
            skip=ctx.skip_invariants,
        )
    elif ctx.ring is not None:
        violations = (
            check_ring_agreement(ctx.ring)
            + check_ring_quorum(ctx.ring)
            + check_ring_liveness(ctx.ring, ctx.expected_update_ids)
        )
        report = InvariantReport(
            checked=("agreement-safety", "quorum-feasibility", "liveness"),
            violations=tuple(violations),
        )
    else:  # pragma: no cover - a scenario must attach something
        raise RuntimeError(f"scenario {name} attached no system or ring")

    # SLO oracle: only when thresholds were configured -- the default
    # (record, never judge) leaves checked/violations, and therefore the
    # trace digest, untouched.
    if ctx.system is not None:
        slo = ctx.system.telemetry.slo
        if slo is not None and slo.thresholds:
            ctx.extra_checked.append("operation-slo")
            for slo_violation in slo.check():
                ctx.extra_violations.append(
                    InvariantViolation("operation-slo", slo_violation.describe())
                )

    if ctx.extra_checked or ctx.extra_violations:
        report = InvariantReport(
            checked=report.checked + tuple(ctx.extra_checked),
            violations=report.violations + tuple(ctx.extra_violations),
        )

    observed = report.violated_names()
    passed = observed == ctx.expect_violations
    digest = _trace_digest(name, seed, ctx.events, report)
    span_dump = ""
    if not passed and ctx.telemetry is not None and ctx.telemetry.enabled:
        span_dump = ctx.telemetry.render_spans(max_depth=6)
    flight_dump = ""
    perfetto = ""
    if (
        (not passed or capture_flight)
        and ctx.telemetry is not None
        and ctx.telemetry.enabled
        and ctx.telemetry.flight is not None
    ):
        flight_dump = ctx.telemetry.flight.render()
        # The Perfetto export rides along with the postmortem: load it
        # into ui.perfetto.dev to see the same timeline visually.
        perfetto = export_telemetry(ctx.telemetry)
    profile_snapshot: dict | None = None
    slo_summary: dict | None = None
    if ctx.telemetry is not None and ctx.telemetry.enabled:
        profiler = ctx.telemetry.profiler
        if profiler is not None and profiler.events_total:
            profile_snapshot = profiler.snapshot()
        slo = ctx.telemetry.slo
        if slo is not None and slo.ops():
            slo_summary = slo.summary()
    if passed and not ctx.expect_violations:
        summary = "all invariants held"
    elif passed:
        summary = "expected violations detected: " + ", ".join(sorted(observed))
    else:
        missing = sorted(ctx.expect_violations - observed)
        unexpected = sorted(observed - ctx.expect_violations)
        parts = []
        if unexpected:
            parts.append("unexpected violations: " + ", ".join(unexpected))
        if missing:
            parts.append("expected but absent: " + ", ".join(missing))
        summary = "; ".join(parts)
    return ChaosReport(
        scenario=name,
        seed=seed,
        passed=passed,
        invariants=report,
        expect_violations=tuple(sorted(ctx.expect_violations)),
        events=tuple(ctx.events),
        trace_digest=digest,
        span_dump=span_dump,
        flight_dump=flight_dump,
        summary=summary,
        profile=profile_snapshot,
        slo=slo_summary,
        perfetto=perfetto,
    )


def run_all(seed: int = 0, chaos: ChaosConfig | None = None) -> list[ChaosReport]:
    """Every registered scenario under one master seed."""
    return [run_scenario(name, seed, chaos) for name in sorted(SCENARIOS)]


__all__ = [
    "ChaosContext",
    "ChaosReport",
    "SCENARIOS",
    "run_all",
    "run_scenario",
    "scenario_descriptions",
]
