"""The backend protocol the client API drives (Section 4.6).

The base API "provides full access to OceanStore functionality in terms
of sessions, session guarantees, updates, and callbacks".  The API layer
is I/O-agnostic: it targets this protocol, implemented by the full
simulated deployment (:class:`repro.core.system.OceanStoreSystem`) and,
for tests and quick scripting, by :class:`LocalBackend` -- a single
in-process replica with the same semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.api.callbacks import ApiEvent, CallbackRegistry, Notification
from repro.data.objects import PersistentObject
from repro.data.update import DataObjectState, Update
from repro.util.ids import GUID


class UnknownObject(KeyError):
    """The backend has no replica of the requested object."""


@dataclass(frozen=True, slots=True)
class SubmitResult:
    """What the backend reports for one submitted update."""

    committed: bool
    new_version: int | None


class Backend(Protocol):
    """What the client API requires of a deployment."""

    def create_object(self, object_guid: GUID) -> None:
        """Make the object exist (with an empty version-0 state)."""

    def read_state(
        self,
        object_guid: GUID,
        allow_tentative: bool,
        min_version: int,
        client_node: int | None = None,
    ) -> DataObjectState:
        """The freshest state available subject to the constraints.

        ``client_node`` locates the read in the network so the backend
        can serve from the closest replica (promiscuous caching).
        """

    def submit_update(self, client_node: int, update: Update) -> None:
        """Inject an update into the system (asynchronous commit)."""

    def read_version(self, object_guid: GUID, version: int) -> DataObjectState:
        """A permanent, read-only archival form (Section 2): the exact
        state as of ``version``.  Raises :class:`UnknownObject` when the
        version was retired and not archived."""

    def callbacks(self) -> CallbackRegistry:
        """The registry through which commit/abort events surface."""

    def settle(self) -> None:
        """Advance the deployment until in-flight work completes."""


class LocalBackend:
    """A single trusted in-process replica: the degenerate deployment.

    Updates commit synchronously; useful for facade and session tests
    where the distributed machinery is noise.
    """

    def __init__(self) -> None:
        self._objects: dict[GUID, PersistentObject] = {}
        self._callbacks = CallbackRegistry()

    def create_object(self, object_guid: GUID) -> None:
        if object_guid not in self._objects:
            self._objects[object_guid] = PersistentObject(guid=object_guid)

    def _object(self, object_guid: GUID) -> PersistentObject:
        try:
            return self._objects[object_guid]
        except KeyError:
            raise UnknownObject(f"no such object: {object_guid}") from None

    def read_state(
        self,
        object_guid: GUID,
        allow_tentative: bool,
        min_version: int,
        client_node: int | None = None,
    ) -> DataObjectState:
        state = self._object(object_guid).active
        if state.version < min_version:
            raise UnknownObject(
                f"object {object_guid} below requested version {min_version}"
            )
        # Snapshot: callers build guards against what they read; handing
        # out the live state would let concurrent commits mutate it.
        return state.copy()

    def submit_update(self, client_node: int, update: Update) -> None:
        obj = self._object(update.object_guid)
        outcome = obj.apply_update(update)
        event = ApiEvent.UPDATE_COMMITTED if outcome.committed else ApiEvent.UPDATE_ABORTED
        self._callbacks.notify(
            Notification(
                event=event,
                object_guid=update.object_guid,
                update_id=update.update_id,
                version=outcome.new_version,
            )
        )
        if outcome.committed:
            self._callbacks.notify(
                Notification(
                    event=ApiEvent.NEW_VERSION,
                    object_guid=update.object_guid,
                    version=outcome.new_version,
                )
            )

    def read_version(self, object_guid: GUID, version: int) -> DataObjectState:
        from repro.data.version_log import VersionNotFound

        obj = self._object(object_guid)
        try:
            return obj.log.version(version).state.copy()
        except VersionNotFound:
            raise UnknownObject(
                f"version {version} of {object_guid} unavailable"
            ) from None

    def callbacks(self) -> CallbackRegistry:
        return self._callbacks

    def settle(self) -> None:
        """Synchronous backend: nothing in flight."""

    # -- conveniences for tests -------------------------------------------------

    def object(self, object_guid: GUID) -> PersistentObject:
        return self._object(object_guid)
