"""Shared directories with Coda-style merge over the live update path.

The blob directories used by :class:`~repro.api.facades.fs.FileSystemFacade`
rewrite the whole mapping per change, so concurrent binds conflict.
:class:`SharedDirectory` instead stores the directory as a *log* of
encrypted delta records -- one :class:`~repro.naming.logdir.DirectoryRecord`
per logical block -- appended through ordinary updates.  Appends need no
guards, so concurrent binds of different names from different clients
all commit, and every reader folds the same merged view (Section 4.4.1's
"Coda provided specific merge procedures for conflicting updates of
directories; this type of conflict resolution is easily supported under
our model").

Records are encrypted blocks: servers see only ciphertext and the append
structure.
"""

from __future__ import annotations

from repro.api.oceanstore import ObjectHandle, OceanStoreHandle
from repro.api.session import Session
from repro.naming.directory import Directory
from repro.naming.logdir import (
    DirectoryRecord,
    bind_record,
    compact_records,
    fold_records,
    unbind_record,
)
from repro.util.ids import GUID


class SharedDirectory:
    """One log-structured directory object, opened by some client."""

    def __init__(
        self,
        store: OceanStoreHandle,
        handle: ObjectHandle,
        session: Session | None = None,
    ) -> None:
        self.store = store
        self.handle = handle
        self.session = session

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls, store: OceanStoreHandle, name: str, session: Session | None = None
    ) -> "SharedDirectory":
        return cls(store, store.create_object(name), session)

    @classmethod
    def open(
        cls, store: OceanStoreHandle, guid: GUID, session: Session | None = None
    ) -> "SharedDirectory":
        return cls(store, store.open_object(guid), session)

    @property
    def guid(self) -> GUID:
        return self.handle.guid

    # -- reads --------------------------------------------------------------

    def _records(self) -> list[DirectoryRecord]:
        state = self.store.read_state(self.handle, self.session)
        records = []
        for block_id, block in state.data.logical_blocks():
            plaintext = self.handle.codec.decrypt_block(block_id, block.ciphertext)
            records.append(DirectoryRecord.decode(plaintext))
        return records

    def snapshot(self) -> Directory:
        """The merged directory view at this moment."""
        return fold_records(self._records())

    def list(self) -> list[str]:
        return [entry.name for entry in self.snapshot().list()]

    def lookup(self, name: str) -> GUID:
        return self.snapshot().lookup(name).target

    def __contains__(self, name: str) -> bool:
        return name in self.snapshot()

    # -- writes --------------------------------------------------------------

    def _append_record(self, record: DirectoryRecord) -> bool:
        builder = self.store.update_builder(self.handle, self.session)
        builder.append(record.encode())
        return self.store.submit(self.handle, builder, self.session).committed

    def bind(self, name: str, target: GUID, is_directory: bool = False) -> bool:
        """Bind a name; conflict-free against concurrent binds of other
        names (plain append, no guard)."""
        return self._append_record(bind_record(name, target, is_directory))

    def unbind(self, name: str) -> bool:
        return self._append_record(unbind_record(name))

    # -- maintenance --------------------------------------------------------------

    def compact(self) -> bool:
        """Rewrite the log as the minimal record set (the paper's
        occasional whole-object re-encryption, applied to directories).

        Guarded on the version read, so a compaction racing a bind
        aborts instead of dropping the concurrent record.
        """
        records = compact_records(self._records())
        state = self.store.read_state(self.handle, self.session)
        builder = self.store.update_builder(self.handle, self.session).guard_version()
        for slot in range(len(state.data.slots)):
            builder.delete(slot)
        for record in records:
            builder.append(record.encode())
        return self.store.submit(self.handle, builder, self.session).committed

    def log_length(self) -> int:
        """Number of delta records currently in the log."""
        return len(self._records())
