"""Application callbacks (Section 4.6).

"The API also provides a callback feature to notify applications of
relevant events.  An application can register an application-level
handler to be invoked at the occurrence of relevant events, such as the
commit or abort of an update."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.util.ids import GUID


class ApiEvent(Enum):
    UPDATE_COMMITTED = "update-committed"
    UPDATE_ABORTED = "update-aborted"
    UPDATE_TENTATIVE = "update-tentative"
    NEW_VERSION = "new-version"


@dataclass(frozen=True, slots=True)
class Notification:
    event: ApiEvent
    object_guid: GUID
    update_id: bytes | None = None
    version: int | None = None


Handler = Callable[[Notification], None]


class CallbackRegistry:
    """Per-object and global handler registration and dispatch."""

    def __init__(self) -> None:
        self._by_object: dict[tuple[GUID, ApiEvent], list[Handler]] = {}
        self._global: dict[ApiEvent, list[Handler]] = {}
        self.delivered = 0

    def register(
        self,
        event: ApiEvent,
        handler: Handler,
        object_guid: GUID | None = None,
    ) -> None:
        if object_guid is None:
            self._global.setdefault(event, []).append(handler)
        else:
            self._by_object.setdefault((object_guid, event), []).append(handler)

    def unregister(
        self,
        event: ApiEvent,
        handler: Handler,
        object_guid: GUID | None = None,
    ) -> None:
        handlers = (
            self._global.get(event)
            if object_guid is None
            else self._by_object.get((object_guid, event))
        )
        if handlers and handler in handlers:
            handlers.remove(handler)

    def notify(self, notification: Notification) -> None:
        handlers = list(self._global.get(notification.event, []))
        handlers += self._by_object.get(
            (notification.object_guid, notification.event), []
        )
        for handler in handlers:
            self.delivered += 1
            handler(notification)
