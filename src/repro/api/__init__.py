"""The OceanStore client API (Section 4.6): sessions with Bayou-style
guarantees, updates, callbacks, and legacy facades."""

from repro.api.backend import Backend, LocalBackend, SubmitResult, UnknownObject
from repro.api.callbacks import ApiEvent, CallbackRegistry, Notification
from repro.api.oceanstore import ObjectHandle, OceanStoreHandle
from repro.api.shared_directory import SharedDirectory
from repro.api.session import (
    GuaranteeViolation,
    Session,
    SessionGuarantee,
    SessionState,
)

__all__ = [
    "ApiEvent",
    "Backend",
    "CallbackRegistry",
    "GuaranteeViolation",
    "LocalBackend",
    "Notification",
    "ObjectHandle",
    "OceanStoreHandle",
    "Session",
    "SessionGuarantee",
    "SessionState",
    "SharedDirectory",
    "SubmitResult",
    "UnknownObject",
]
