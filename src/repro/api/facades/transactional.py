"""The transactional facade (Sections 4.4.1 and 4.6).

"The model can be used to provide ACID semantics: the first predicate is
made to check the read set of a transaction, the corresponding action
applies the write set, and there are no other predicate-action pairs."

A transaction opens against one object, tracks the blocks it reads, and
buffers its writes.  Commit produces a *single* update whose guard is the
conjunction of compare-version and compare-block predicates over the read
set; the actions are the buffered write set.  The facade "simplif[ies]
the application writer's job by ensuring proper session guarantees,
reusing standard update templates, and automatically computing read sets
and write sets for each update."
"""

from __future__ import annotations

from enum import Enum

from repro.api.oceanstore import ObjectHandle, OceanStoreHandle
from repro.api.session import Session, SessionGuarantee


class TransactionState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionError(RuntimeError):
    pass


class Transaction:
    """One optimistic transaction against a single object."""

    def __init__(self, store: OceanStoreHandle, handle: ObjectHandle) -> None:
        self.store = store
        self.handle = handle
        self.session: Session = store.open_session(SessionGuarantee.ACID)
        self._snapshot = store.read_state(handle, self.session)
        self._builder = store.update_builder(handle, self.session)
        self._read_blocks: set[int] = set()
        self._read_version = False
        self.state = TransactionState.ACTIVE

    def _check_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionError(f"transaction is {self.state.value}")

    # -- reads (tracked) --------------------------------------------------------

    def read(self) -> bytes:
        """Read the whole document; the read set covers every block."""
        self._check_active()
        self._read_version = True
        return self.handle.codec.read_document(self._snapshot.data)

    def read_block(self, index: int) -> bytes:
        """Read one logical block; only it joins the read set."""
        self._check_active()
        self._read_blocks.add(index)
        return self.handle.codec.read_logical_block(self._snapshot.data, index)

    # -- writes (buffered) ----------------------------------------------------------

    def append(self, data: bytes) -> "Transaction":
        self._check_active()
        self._builder.append(data)
        return self

    def replace(self, slot: int, data: bytes) -> "Transaction":
        self._check_active()
        self._builder.replace(slot, data)
        return self

    def insert(self, slot: int, data: bytes) -> "Transaction":
        self._check_active()
        self._builder.insert(slot, data)
        return self

    def delete(self, slot: int) -> "Transaction":
        self._check_active()
        self._builder.delete(slot)
        return self

    # -- outcome -------------------------------------------------------------------------

    def commit(self) -> bool:
        """Build the read-set-guarded update and submit it.

        Returns True on commit.  A conflicting concurrent update makes
        the guard fail server-side: the update aborts, not the system.
        """
        self._check_active()
        if self._read_version or not self._read_blocks:
            # Whole-document reads (or blind writes) guard on the version.
            self._builder.guard_version()
        for index in sorted(self._read_blocks):
            self._builder.guard_block(index)
        result = self.store.submit(self.handle, self._builder, self.session)
        self.state = (
            TransactionState.COMMITTED if result.committed else TransactionState.ABORTED
        )
        return result.committed

    def abort(self) -> None:
        self._check_active()
        self.state = TransactionState.ABORTED


class TransactionalFacade:
    """Begin/commit/abort interface over the OceanStore API."""

    def __init__(self, store: OceanStoreHandle) -> None:
        self.store = store

    def begin(self, handle: ObjectHandle) -> Transaction:
        return Transaction(self.store, handle)

    def run(self, handle: ObjectHandle, body, max_retries: int = 5) -> bool:
        """Run ``body(txn)`` with optimistic retry on conflict.

        "conflict resolution reduces the number of aborts normally seen
        in detection-based schemes" -- but aborts still happen; retrying
        against fresh state is the standard recovery.
        """
        if max_retries < 1:
            raise TransactionError("max_retries must be >= 1")
        for _ in range(max_retries):
            txn = self.begin(handle)
            body(txn)
            if txn.state is TransactionState.ABORTED:
                return False  # body chose to abort; honor it
            if txn.commit():
                return True
        return False
