"""The Unix file system facade (Section 4.6).

"OceanStore provides a number of legacy facades that implement common
APIs, including a Unix file system ..."  Paths resolve through directory
objects (Section 4.1); files are ordinary OceanStore objects.  The facade
keeps directory objects as client-managed structures stored in the
infrastructure like any other object, so the whole namespace enjoys the
same durability and access control as file data.
"""

from __future__ import annotations

from repro.api.oceanstore import ObjectHandle, OceanStoreHandle
from repro.api.session import Session
from repro.naming.directory import Directory, NameNotFound, split_path
from repro.util import serialization
from repro.util.ids import GUID


class FileSystemError(OSError):
    pass


class FileNotFound(FileSystemError):
    pass


class NotADirectoryError_(FileSystemError):
    pass


class FileSystemFacade:
    """Path-based files and directories over the OceanStore API.

    The facade owns a root directory object per handle ("root
    directories are only roots with respect to the clients that use
    them").  Directory objects store their serialized entry map as the
    object's plaintext.
    """

    ROOT_NAME = "__fs_root__"

    def __init__(self, store: OceanStoreHandle, session: Session | None = None) -> None:
        self.store = store
        self.session = session
        self._root = store.create_object(self.ROOT_NAME)
        if not self.store.read(self._root, session):
            self._write_directory(self._root, Directory())

    # -- directory object I/O -----------------------------------------------------

    def _read_directory(self, handle: ObjectHandle) -> Directory:
        raw = self.store.read(handle, self.session)
        if not raw:
            return Directory()
        return Directory.from_dict(serialization.decode(raw))

    def _write_directory(self, handle: ObjectHandle, directory: Directory) -> None:
        result = self.store.write(handle, serialization.encode(directory.to_dict()))
        if not result.committed:
            raise FileSystemError("directory update aborted (concurrent change?)")

    # -- path resolution ------------------------------------------------------------

    def _resolve_dir(self, components: list[str]) -> ObjectHandle:
        """Walk directory components from the root."""
        current = self._root
        for component in components:
            directory = self._read_directory(current)
            try:
                entry = directory.lookup(component)
            except NameNotFound:
                raise FileNotFound("/".join(components)) from None
            if not entry.is_directory:
                raise NotADirectoryError_(component)
            current = self.store.open_object(entry.target)
        return current

    def _split_parent(self, path: str) -> tuple[list[str], str]:
        components = split_path(path)
        if not components:
            raise FileSystemError("path must name a file or directory")
        return components[:-1], components[-1]

    def _object_name(self, path: str) -> str:
        """Stable per-path object name (namespaced to avoid collisions)."""
        return f"__fs__:{path.strip('/')}"

    # -- operations -------------------------------------------------------------------

    def mkdir(self, path: str) -> None:
        parent_components, name = self._split_parent(path)
        parent = self._resolve_dir(parent_components)
        directory = self._read_directory(parent)
        if name in directory:
            raise FileSystemError(f"exists: {path}")
        child = self.store.create_object(self._object_name(path))
        self._write_directory(child, Directory())
        directory.bind(name, child.guid, is_directory=True)
        self._write_directory(parent, directory)

    def write_file(self, path: str, data: bytes) -> None:
        parent_components, name = self._split_parent(path)
        parent = self._resolve_dir(parent_components)
        directory = self._read_directory(parent)
        if name in directory:
            entry = directory.lookup(name)
            if entry.is_directory:
                raise FileSystemError(f"is a directory: {path}")
            handle = self.store.open_object(entry.target)
        else:
            handle = self.store.create_object(self._object_name(path))
            directory.bind(name, handle.guid, is_directory=False)
            self._write_directory(parent, directory)
        result = self.store.write(handle, data, self.session)
        if not result.committed:
            raise FileSystemError(f"write aborted: {path}")

    def read_file(self, path: str) -> bytes:
        parent_components, name = self._split_parent(path)
        parent = self._resolve_dir(parent_components)
        directory = self._read_directory(parent)
        try:
            entry = directory.lookup(name)
        except NameNotFound:
            raise FileNotFound(path) from None
        if entry.is_directory:
            raise FileSystemError(f"is a directory: {path}")
        return self.store.read(self.store.open_object(entry.target), self.session)

    def append_file(self, path: str, data: bytes) -> None:
        parent_components, name = self._split_parent(path)
        parent = self._resolve_dir(parent_components)
        directory = self._read_directory(parent)
        try:
            entry = directory.lookup(name)
        except NameNotFound:
            raise FileNotFound(path) from None
        handle = self.store.open_object(entry.target)
        result = self.store.append(handle, data, self.session)
        if not result.committed:
            raise FileSystemError(f"append aborted: {path}")

    def listdir(self, path: str = "/") -> list[str]:
        components = split_path(path)
        directory = self._read_directory(self._resolve_dir(components))
        return [entry.name for entry in directory.list()]

    def exists(self, path: str) -> bool:
        try:
            parent_components, name = self._split_parent(path)
            parent = self._resolve_dir(parent_components)
            return name in self._read_directory(parent)
        except (FileSystemError, ValueError):
            return False

    def remove(self, path: str) -> None:
        parent_components, name = self._split_parent(path)
        parent = self._resolve_dir(parent_components)
        directory = self._read_directory(parent)
        if name not in directory:
            raise FileNotFound(path)
        directory.unbind(name)
        self._write_directory(parent, directory)

    def guid_of(self, path: str) -> GUID:
        parent_components, name = self._split_parent(path)
        parent = self._resolve_dir(parent_components)
        return self._read_directory(parent).lookup(name).target
