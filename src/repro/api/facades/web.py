"""The World Wide Web gateway facade (Sections 4.6 and 5).

"OceanStore provides a number of legacy facades ... and a gateway to the
World Wide Web"; the prototype planned "a read-only proxy for the World
Wide Web".

The gateway answers GET-style requests for ``oceanstore://`` URLs:

* ``oceanstore://<guid-hex>``            -- latest version of an object
* ``oceanstore://<guid-hex>@<version>``  -- a permanent hyper-link
  (Section 4.5's version-qualified naming), served from the archival
  form so it can never change underneath the link;
* ``oceanstore://fs/<path>``             -- a path through the user's
  file-system facade root.

It is strictly read-only (the proxy holds read keys but never signs
updates) and returns familiar status codes so legacy clients behave.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.backend import UnknownObject
from repro.api.facades.fs import FileNotFound, FileSystemError, FileSystemFacade
from repro.api.oceanstore import OceanStoreHandle
from repro.naming.versions import parse_versioned_name

SCHEME = "oceanstore://"


@dataclass(frozen=True, slots=True)
class WebResponse:
    status: int
    body: bytes
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status == 200


class WebGateway:
    """A read-only proxy from URL space into the OceanStore."""

    def __init__(
        self,
        store: OceanStoreHandle,
        filesystem: FileSystemFacade | None = None,
        archive_reader=None,
    ) -> None:
        """``archive_reader(guid, version) -> DataObjectState`` serves
        permanent links from archival forms; when the backend is an
        :class:`~repro.core.system.OceanStoreSystem`, pass its
        ``restore_from_archive``.
        """
        self.store = store
        self.filesystem = filesystem
        self.archive_reader = archive_reader

    def get(self, url: str) -> WebResponse:
        """Resolve an oceanstore:// URL to content."""
        if not url.startswith(SCHEME):
            return WebResponse(400, b"", f"unsupported scheme in {url!r}")
        rest = url[len(SCHEME) :]
        if rest.startswith("fs/"):
            return self._get_path(rest[3:])
        return self._get_object(rest)

    # -- object URLs -------------------------------------------------------

    def _get_object(self, spec: str) -> WebResponse:
        try:
            name = parse_versioned_name(spec)
        except ValueError as exc:
            return WebResponse(400, b"", str(exc))
        if not self.store.keyring.has_key(name.guid):
            return WebResponse(403, b"", "no read key for object")
        handle = self.store.open_object(name.guid)
        if name.version is None:
            try:
                return WebResponse(200, self.store.read(handle))
            except UnknownObject:
                return WebResponse(404, b"", "object not found")
        if self.archive_reader is None:
            return WebResponse(501, b"", "no archival reader configured")
        try:
            state = self.archive_reader(name.guid, name.version)
        except (UnknownObject, KeyError):
            return WebResponse(404, b"", f"version {name.version} not archived")
        return WebResponse(200, handle.codec.read_document(state.data))

    # -- filesystem URLs --------------------------------------------------------

    def _get_path(self, path: str) -> WebResponse:
        if self.filesystem is None:
            return WebResponse(501, b"", "no filesystem mounted")
        try:
            if not path or path.endswith("/"):
                listing = self.filesystem.listdir(path or "/")
                body = "\n".join(listing).encode()
                return WebResponse(200, body)
            return WebResponse(200, self.filesystem.read_file(path))
        except FileNotFound as exc:
            return WebResponse(404, b"", str(exc))
        except FileSystemError as exc:
            return WebResponse(400, b"", str(exc))
