"""Legacy facades over the native API (Section 4.6): a Unix-style file
system and a transactional interface."""

from repro.api.facades.fs import (
    FileNotFound,
    FileSystemError,
    FileSystemFacade,
)
from repro.api.facades.transactional import (
    Transaction,
    TransactionError,
    TransactionState,
    TransactionalFacade,
)
from repro.api.facades.web import WebGateway, WebResponse

__all__ = [
    "FileNotFound",
    "FileSystemError",
    "FileSystemFacade",
    "Transaction",
    "TransactionError",
    "TransactionState",
    "TransactionalFacade",
    "WebGateway",
    "WebResponse",
]
