"""The native OceanStore client API (Section 4.6).

:class:`OceanStoreHandle` binds a principal (with its keyring) to a
backend.  It owns object creation (self-certifying GUIDs + read keys),
plaintext reads/writes through the ciphertext codec, session management,
and callbacks.  Facades (:mod:`repro.api.facades`) layer familiar
interfaces on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.backend import Backend, SubmitResult
from repro.api.callbacks import ApiEvent, Notification
from repro.api.session import GuaranteeViolation, Session, SessionGuarantee
from repro.crypto.keys import KeyRing, ObjectKey, Principal
from repro.data.ciphertext_ops import ClientCodec, UpdateBuilder
from repro.data.update import DataObjectState
from repro.naming.guid import object_guid
from repro.recovery.retry import RetryPolicy
from repro.util.ids import GUID


@dataclass(frozen=True, slots=True)
class ObjectHandle:
    """An opened object: GUID plus the codec for its current read key."""

    guid: GUID
    codec: ClientCodec


class OceanStoreHandle:
    """A client's connection to the OceanStore."""

    def __init__(
        self,
        backend: Backend,
        principal: Principal,
        keyring: KeyRing,
        home_node: int = 0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.backend = backend
        self.principal = principal
        self.keyring = keyring
        self.home_node = home_node
        #: default retry budget for reads; ``None`` keeps the ordinary
        #: (non-degrading) read path
        self.retry = retry
        self._clock = 0.0
        self._builder_nonce = 0

    # -- time ---------------------------------------------------------------------

    def _timestamp(self) -> float:
        """Client-side optimistic timestamps (monotonic per handle)."""
        self._clock += 1.0
        return self._clock

    # -- objects ---------------------------------------------------------------

    def create_object(self, name: str) -> ObjectHandle:
        """Mint a self-certifying object with a fresh read key."""
        guid = object_guid(self.principal.public_key, name)
        if not self.keyring.has_key(guid):
            self.keyring.create_object_key(guid)
        self.backend.create_object(guid)
        return self.open_object(guid)

    def open_object(self, guid: GUID) -> ObjectHandle:
        """Open an object we hold the read key for."""
        key = self.keyring.key_for(guid)
        return ObjectHandle(guid=guid, codec=ClientCodec(key))

    def open_named(self, name: str) -> ObjectHandle:
        return self.open_object(object_guid(self.principal.public_key, name))

    def grant_read(self, guid: GUID, other_keyring: KeyRing) -> ObjectKey:
        """Reader restriction is key distribution (Section 4.2)."""
        key = self.keyring.key_for(guid)
        other_keyring.grant(key)
        return key

    def revoke_readers(self, handle: ObjectHandle) -> ObjectHandle:
        """Revoke read permission by re-keying and re-encrypting.

        Section 4.2: "To revoke read permission, the owner must request
        that replicas be deleted or re-encrypted with the new key."  The
        owner mints the next key generation, re-encrypts the current
        content under it, and distributes the new key only to remaining
        readers.  A recently-revoked reader can still read *old* cached
        data -- the paper is explicit that this exposure is unavoidable
        ("there is no way to force a reader to forget what has been
        read") -- but every later version is opaque to them.

        Returns a fresh handle bound to the new key generation.
        """
        plaintext = self.read(handle)
        new_key = self.keyring.revoke_and_rekey(handle.guid)
        new_handle = ObjectHandle(guid=handle.guid, codec=ClientCodec(new_key))
        state = self._read_state(handle.guid, None)
        builder = UpdateBuilder(
            new_handle.codec, state, entropy=self._builder_entropy()
        ).guard_version()
        for slot in range(len(state.data.slots)):
            builder.delete(slot)
        builder.append(plaintext)
        result = self.submit(new_handle, builder)
        if not result.committed:
            raise RuntimeError("re-encryption update aborted; retry revocation")
        return new_handle

    # -- sessions ----------------------------------------------------------------

    def open_session(
        self, guarantees: SessionGuarantee = SessionGuarantee.NONE
    ) -> Session:
        return Session(guarantees)

    # -- reads ----------------------------------------------------------------------

    def read(
        self,
        handle: ObjectHandle,
        session: Session | None = None,
        retry: RetryPolicy | None = None,
    ) -> bytes:
        """Read and decrypt the whole object under the session's rules.

        With a :class:`RetryPolicy` (per call, or installed on the
        handle), the read runs down the backend's degradation ladder
        instead of the ordinary path: locate, salted retries with
        backoff, tentative secondary data (when the session permits),
        and archival reconstruction as the last resort.
        """
        state = self._read_state(handle.guid, session, retry)
        return handle.codec.read_document(state.data)

    def read_state(
        self,
        handle: ObjectHandle,
        session: Session | None = None,
        retry: RetryPolicy | None = None,
    ) -> DataObjectState:
        """The raw (ciphertext) state, for update building."""
        return self._read_state(handle.guid, session, retry)

    def read_version(self, handle: ObjectHandle, version: int) -> bytes:
        """Read a permanent, read-only version (a 'permanent pointer to
        information', Section 2)."""
        state = self.backend.read_version(handle.guid, version)
        return handle.codec.read_document(state.data)

    def _read_state(
        self,
        guid: GUID,
        session: Session | None,
        retry: RetryPolicy | None = None,
    ) -> DataObjectState:
        allow_tentative = True
        min_version = 0
        if session is not None:
            allow_tentative = not session.requires_committed_data
            min_version = session.min_acceptable_version(guid)
        retry = retry if retry is not None else self.retry
        read_degraded = getattr(self.backend, "read_degraded", None)
        if retry is not None and read_degraded is not None:
            state = read_degraded(
                guid,
                allow_tentative=allow_tentative,
                min_version=min_version,
                client_node=self.home_node,
                retry=retry,
            )
        else:
            state = self.backend.read_state(
                guid,
                allow_tentative=allow_tentative,
                min_version=min_version,
                client_node=self.home_node,
            )
        if session is not None:
            session.check_read(guid, state)
        return state

    # -- writes ----------------------------------------------------------------------

    def _builder_entropy(self) -> bytes:
        """Per-client, per-builder uniqueness for block identities, so
        concurrent clients sharing an object key never collide."""
        self._builder_nonce += 1
        return self.principal.guid.to_bytes() + self._builder_nonce.to_bytes(8, "big")

    def update_builder(
        self, handle: ObjectHandle, session: Session | None = None
    ) -> UpdateBuilder:
        """An update builder primed with the current object state."""
        state = self._read_state(handle.guid, session)
        builder = UpdateBuilder(handle.codec, state, entropy=self._builder_entropy())
        if session is not None:
            floor = session.write_depends_on_version(handle.guid)
            if floor and state.version < floor:
                raise GuaranteeViolation(
                    f"cannot write against version {state.version}; session "
                    f"writes depend on version {floor}"
                )
        return builder

    def submit(
        self,
        handle: ObjectHandle,
        builder: UpdateBuilder,
        session: Session | None = None,
        wait: bool = True,
    ) -> SubmitResult:
        """Sign, submit, and (by default) wait for the commit decision."""
        update = builder.build(self.principal, handle.guid, self._timestamp())
        result_holder: list[SubmitResult] = []

        def on_commit(n: Notification) -> None:
            if n.update_id == update.update_id:
                result_holder.append(SubmitResult(True, n.version))

        def on_abort(n: Notification) -> None:
            if n.update_id == update.update_id:
                result_holder.append(SubmitResult(False, None))

        registry = self.backend.callbacks()
        registry.register(ApiEvent.UPDATE_COMMITTED, on_commit, handle.guid)
        registry.register(ApiEvent.UPDATE_ABORTED, on_abort, handle.guid)
        try:
            self.backend.submit_update(self.home_node, update)
            if wait:
                self.backend.settle()
        finally:
            registry.unregister(ApiEvent.UPDATE_COMMITTED, on_commit, handle.guid)
            registry.unregister(ApiEvent.UPDATE_ABORTED, on_abort, handle.guid)
        if not result_holder:
            return SubmitResult(committed=False, new_version=None)
        result = result_holder[-1]
        if result.committed and session is not None and result.new_version is not None:
            session.record_write(handle.guid, result.new_version)
        return result

    def write(
        self,
        handle: ObjectHandle,
        data: bytes,
        session: Session | None = None,
    ) -> SubmitResult:
        """Whole-document overwrite: delete existing slots, append anew.

        Guarded on the version read, so concurrent overwrites conflict
        rather than interleave.
        """
        state = self._read_state(handle.guid, session)
        builder = UpdateBuilder(
            handle.codec, state, entropy=self._builder_entropy()
        ).guard_version()
        for slot in range(len(state.data.slots)):
            builder.delete(slot)
        builder.append(data)
        return self.submit(handle, builder, session)

    def append(
        self,
        handle: ObjectHandle,
        data: bytes,
        session: Session | None = None,
    ) -> SubmitResult:
        builder = self.update_builder(handle, session).append(data)
        return self.submit(handle, builder, session)

    # -- callbacks -------------------------------------------------------------------

    def on_event(self, event: ApiEvent, handler, guid: GUID | None = None) -> None:
        self.backend.callbacks().register(event, handler, guid)
