"""Sessions and session guarantees (Sections 2 and 4.6).

"An application writer views the OceanStore as a number of sessions.
Each session is a sequence of read and write requests related to one
another through the session guarantees, in the style of the Bayou system.
Session guarantees dictate the level of consistency seen by a session's
reads and writes; they can range from supporting extremely loose
consistency semantics to supporting the ACID semantics favored in
databases."

The four Bayou guarantees are modelled over version numbers:

* READ_YOUR_WRITES -- reads reflect every write this session made;
* MONOTONIC_READS -- reads never see an older version than before;
* WRITES_FOLLOW_READS -- writes are ordered after the reads they depend
  on (enforced with a compare-version floor on the write's guard);
* MONOTONIC_WRITES -- this session's writes apply in issue order.

``ACID`` demands committed data only and bundles all four.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Flag, auto

from repro.data.update import DataObjectState
from repro.util.ids import GUID


class SessionGuarantee(Flag):
    NONE = 0
    READ_YOUR_WRITES = auto()
    MONOTONIC_READS = auto()
    WRITES_FOLLOW_READS = auto()
    MONOTONIC_WRITES = auto()
    ACID = (
        READ_YOUR_WRITES | MONOTONIC_READS | WRITES_FOLLOW_READS | MONOTONIC_WRITES
    )


class GuaranteeViolation(RuntimeError):
    """A replica could not satisfy the session's guarantees."""


@dataclass
class SessionState:
    """Per-object vectors a session maintains to enforce guarantees."""

    #: highest version this session has read, per object
    read_floor: dict[GUID, int] = field(default_factory=dict)
    #: highest version resulting from this session's own writes
    write_floor: dict[GUID, int] = field(default_factory=dict)


class Session:
    """A sequence of reads and writes bound by guarantees.

    The session does not fetch data itself; callers present the state a
    replica offered, and the session either accepts it (recording what
    was seen) or raises :class:`GuaranteeViolation`, telling the caller
    to find a fresher replica.  This keeps the guarantee logic pure and
    testable, with I/O in the client layer.
    """

    def __init__(self, guarantees: SessionGuarantee = SessionGuarantee.NONE) -> None:
        self.guarantees = guarantees
        self.state = SessionState()

    # -- floors ----------------------------------------------------------------

    def min_acceptable_version(self, object_guid: GUID) -> int:
        """The lowest version a replica may serve this session."""
        floor = 0
        if self.guarantees & SessionGuarantee.MONOTONIC_READS:
            floor = max(floor, self.state.read_floor.get(object_guid, 0))
        if self.guarantees & SessionGuarantee.READ_YOUR_WRITES:
            floor = max(floor, self.state.write_floor.get(object_guid, 0))
        return floor

    def write_depends_on_version(self, object_guid: GUID) -> int:
        """Version floor a write must be serialized after."""
        floor = 0
        if self.guarantees & SessionGuarantee.WRITES_FOLLOW_READS:
            floor = max(floor, self.state.read_floor.get(object_guid, 0))
        if self.guarantees & SessionGuarantee.MONOTONIC_WRITES:
            floor = max(floor, self.state.write_floor.get(object_guid, 0))
        return floor

    # -- bookkeeping ---------------------------------------------------------------

    def check_read(self, object_guid: GUID, offered: DataObjectState) -> DataObjectState:
        """Validate an offered replica state against the guarantees.

        On success the read is recorded and the state returned; on
        failure :class:`GuaranteeViolation` is raised and nothing is
        recorded.
        """
        floor = self.min_acceptable_version(object_guid)
        if offered.version < floor:
            raise GuaranteeViolation(
                f"replica at version {offered.version} below session floor {floor}"
            )
        current = self.state.read_floor.get(object_guid, 0)
        self.state.read_floor[object_guid] = max(current, offered.version)
        return offered

    def record_write(self, object_guid: GUID, resulting_version: int) -> None:
        current = self.state.write_floor.get(object_guid, 0)
        self.state.write_floor[object_guid] = max(current, resulting_version)

    @property
    def requires_committed_data(self) -> bool:
        """ACID sessions must not observe tentative state."""
        return self.guarantees == SessionGuarantee.ACID
