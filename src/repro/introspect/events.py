"""Introspection events (Section 4.7.1, Figure 8).

"Events include any incoming message or noteworthy physical measurement."
Observation modules see a stream of :class:`Event` records; fast handlers
summarize them into the local database, and summaries flow up the
hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.network import NodeId
from repro.util.ids import GUID


@dataclass(frozen=True, slots=True)
class Event:
    """One observed occurrence on a node.

    ``kind`` is a small vocabulary ("access", "message", "load", ...);
    ``attributes`` carries numeric or string measurements.
    """

    kind: str
    node: NodeId
    time_ms: float
    subject: GUID | None = None
    attributes: dict = field(default_factory=dict)

    def get(self, name: str, default=None):
        """Attribute access used by the DSL's Field expression."""
        if name == "kind":
            return self.kind
        if name == "node":
            return self.node
        if name == "time_ms":
            return self.time_ms
        if name == "subject":
            return self.subject
        return self.attributes.get(name, default)


class EventBus:
    """Per-node fan-out of events to registered observation modules."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Event], None]] = []
        self.events_delivered = 0

    def subscribe(self, handler: Callable[[Event], None]) -> None:
        self._subscribers.append(handler)

    def emit(self, event: Event) -> None:
        self.events_delivered += 1
        for handler in list(self._subscribers):
            handler(event)
