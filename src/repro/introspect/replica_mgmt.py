"""Introspective replica management (Section 4.7.2).

"Replica management adjusts the number and location of floating replicas
in order to service access requests more efficiently.  Event handlers
monitor client requests and system load, noting when access to a specific
replica exceeds its resource allotment.  When access requests overwhelm a
replica, it forwards a request for assistance to its parent node.  The
parent, which tracks locally available resources, can create additional
floating replicas on nearby nodes to alleviate load.  Conversely, replica
management eliminates floating replicas that have fallen into disuse."

The manager observes per-(object, replica) request rates in sliding
windows and issues :class:`ReplicaDecision` records.  Actuation (actually
creating/destroying replicas) is delegated to callbacks so the same logic
drives the integrated system in :mod:`repro.core` and standalone tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.sim.network import NodeId
from repro.util.ids import GUID


class DecisionKind(Enum):
    CREATE = "create"
    ELIMINATE = "eliminate"


@dataclass(frozen=True, slots=True)
class ReplicaDecision:
    kind: DecisionKind
    object_guid: GUID
    replica_node: NodeId
    #: for CREATE: where the new replica should go (near the load)
    target_node: NodeId | None = None


@dataclass
class _ReplicaLoad:
    requests: deque = field(default_factory=deque)
    #: clients generating the recent load, for placement decisions
    recent_clients: deque = field(default_factory=deque)


class ReplicaManager:
    """Load-driven replica creation and disuse-driven elimination."""

    def __init__(
        self,
        window_ms: float = 10_000.0,
        overload_requests: int = 20,
        disuse_requests: int = 1,
        pick_nearby: Callable[[NodeId], NodeId] | None = None,
    ) -> None:
        if window_ms <= 0:
            raise ValueError("window must be positive")
        if overload_requests <= disuse_requests:
            raise ValueError("overload threshold must exceed disuse threshold")
        self.window_ms = window_ms
        self.overload_requests = overload_requests
        self.disuse_requests = disuse_requests
        self.pick_nearby = pick_nearby
        self._loads: dict[tuple[GUID, NodeId], _ReplicaLoad] = {}

    # -- observation -----------------------------------------------------------

    def record_request(
        self, object_guid: GUID, replica_node: NodeId, client: NodeId, now_ms: float
    ) -> None:
        load = self._loads.setdefault((object_guid, replica_node), _ReplicaLoad())
        load.requests.append(now_ms)
        load.recent_clients.append(client)
        while len(load.recent_clients) > 16:
            load.recent_clients.popleft()
        self._trim(load, now_ms)

    def register_replica(self, object_guid: GUID, replica_node: NodeId) -> None:
        """Track a replica even before it sees requests (for disuse)."""
        self._loads.setdefault((object_guid, replica_node), _ReplicaLoad())

    def forget_replica(self, object_guid: GUID, replica_node: NodeId) -> None:
        self._loads.pop((object_guid, replica_node), None)

    def _trim(self, load: _ReplicaLoad, now_ms: float) -> None:
        cutoff = now_ms - self.window_ms
        while load.requests and load.requests[0] < cutoff:
            load.requests.popleft()

    def request_rate(self, object_guid: GUID, replica_node: NodeId, now_ms: float) -> int:
        load = self._loads.get((object_guid, replica_node))
        if load is None:
            return 0
        self._trim(load, now_ms)
        return len(load.requests)

    # -- decisions ----------------------------------------------------------------

    def evaluate(self, now_ms: float) -> list[ReplicaDecision]:
        """Scan all tracked replicas; emit create/eliminate decisions.

        A replica is preserved from elimination if it is the only one we
        know of for its object (availability floor).
        """
        decisions = []
        replicas_per_object: dict[GUID, int] = {}
        for (guid, _node) in self._loads:
            replicas_per_object[guid] = replicas_per_object.get(guid, 0) + 1
        for (guid, node), load in sorted(
            self._loads.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
        ):
            self._trim(load, now_ms)
            count = len(load.requests)
            if count >= self.overload_requests:
                target = None
                if load.recent_clients:
                    hot_client = max(
                        set(load.recent_clients), key=list(load.recent_clients).count
                    )
                    target = (
                        self.pick_nearby(hot_client)
                        if self.pick_nearby is not None
                        else hot_client
                    )
                decisions.append(
                    ReplicaDecision(
                        kind=DecisionKind.CREATE,
                        object_guid=guid,
                        replica_node=node,
                        target_node=target,
                    )
                )
            elif count < self.disuse_requests and replicas_per_object[guid] > 1:
                decisions.append(
                    ReplicaDecision(
                        kind=DecisionKind.ELIMINATE,
                        object_guid=guid,
                        replica_node=node,
                    )
                )
        return decisions
