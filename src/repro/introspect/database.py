"""The local summary database (Section 4.7.1, Figure 8).

"A level of fast event handlers summarizes local events.  These summaries
are stored in a local database.  At the leaves of the hierarchy, this
database may reside only in memory; we loosen durability restrictions for
local observations in order to attain the necessary event rate."

Summaries are (key -> value) with a recorded time and a TTL: soft state
that expires unless refreshed, matching the paper's durability trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class SummaryEntry:
    key: str
    value: Any
    recorded_ms: float
    ttl_ms: float

    def expired(self, now_ms: float) -> bool:
        return now_ms > self.recorded_ms + self.ttl_ms


class SummaryDatabase:
    """Soft-state key/value store for event summaries."""

    DEFAULT_TTL_MS = 60_000.0

    def __init__(self) -> None:
        self._entries: dict[str, SummaryEntry] = {}

    def put(self, key: str, value: Any, now_ms: float, ttl_ms: float | None = None) -> None:
        self._entries[key] = SummaryEntry(
            key=key,
            value=value,
            recorded_ms=now_ms,
            ttl_ms=self.DEFAULT_TTL_MS if ttl_ms is None else ttl_ms,
        )

    def get(self, key: str, now_ms: float) -> Any:
        entry = self._entries.get(key)
        if entry is None or entry.expired(now_ms):
            return None
        return entry.value

    def items(self, now_ms: float) -> Iterator[tuple[str, Any]]:
        """Live entries only; expired ones are garbage-collected lazily."""
        for key in list(self._entries):
            entry = self._entries[key]
            if entry.expired(now_ms):
                del self._entries[key]
            else:
                yield key, entry.value

    def sweep(self, now_ms: float) -> int:
        """Eagerly drop expired entries; returns how many were dropped."""
        expired = [k for k, e in self._entries.items() if e.expired(now_ms)]
        for key in expired:
            del self._entries[key]
        return len(expired)

    def __len__(self) -> int:
        return len(self._entries)
