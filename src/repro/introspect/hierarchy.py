"""The introspection hierarchy (Section 4.7.1).

"These systems process local events, forwarding summaries up a
distributed hierarchy to form approximate global views of the system ...
after processing and responding to its own events, a third level of each
node forwards an appropriate summary of its knowledge to a parent node
for further processing on the wider scale."

Each :class:`IntrospectionNode` runs three levels:

1. fast verified handlers (DSL programs) summarizing events into the
   local soft-state database;
2. periodic in-depth analyses over the database (arbitrary Python,
   trusted code, run rarely);
3. summary forwarding to the parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.introspect.database import SummaryDatabase
from repro.introspect.dsl import CompiledHandler, HandlerProgram, ResourceLimits
from repro.introspect.events import Event, EventBus
from repro.sim.network import NodeId


@dataclass(frozen=True, slots=True)
class Summary:
    """What a node forwards to its parent."""

    origin: NodeId
    key: str
    value: Any
    time_ms: float


AnalysisFn = Callable[[SummaryDatabase, float], dict[str, Any]]


class IntrospectionNode:
    """One node's observation/optimization machinery."""

    def __init__(self, node_id: NodeId, limits: ResourceLimits = ResourceLimits()) -> None:
        self.node_id = node_id
        self.limits = limits
        self.bus = EventBus()
        self.database = SummaryDatabase()
        self._handlers: dict[str, CompiledHandler] = {}
        self._analyses: list[AnalysisFn] = []
        self.parent: "IntrospectionNode | None" = None
        self.received_summaries: list[Summary] = []

    # -- level 1: fast handlers ------------------------------------------------

    def install_handler(self, program: HandlerProgram) -> None:
        """Compile (with verification) and attach a handler program."""
        handler = CompiledHandler(program, self.limits)
        self._handlers[program.name] = handler

        def on_event(event: Event) -> None:
            value = handler(event)
            if value is not None:
                self.database.put(program.name, value, now_ms=event.time_ms)

        self.bus.subscribe(on_event)

    def observe(self, event: Event) -> None:
        self.bus.emit(event)

    # -- level 2: periodic analysis -----------------------------------------------

    def install_analysis(self, analysis: AnalysisFn) -> None:
        self._analyses.append(analysis)

    def run_analyses(self, now_ms: float) -> dict[str, Any]:
        """Run all in-depth analyses; results land back in the database."""
        produced: dict[str, Any] = {}
        for analysis in self._analyses:
            for key, value in analysis(self.database, now_ms).items():
                self.database.put(key, value, now_ms=now_ms)
                produced[key] = value
        return produced

    # -- level 3: forwarding ----------------------------------------------------------

    def forward_summaries(self, now_ms: float) -> list[Summary]:
        """Send the current live database upward; returns what was sent."""
        if self.parent is None:
            return []
        sent = []
        for key, value in self.database.items(now_ms):
            summary = Summary(
                origin=self.node_id, key=key, value=value, time_ms=now_ms
            )
            self.parent.receive_summary(summary)
            sent.append(summary)
        return sent

    def receive_summary(self, summary: Summary) -> None:
        self.received_summaries.append(summary)
        self.database.put(
            f"child:{summary.origin}:{summary.key}", summary.value, summary.time_ms
        )


def build_hierarchy(
    nodes: list[IntrospectionNode], fanout: int = 4
) -> IntrospectionNode:
    """Arrange nodes into a fanout-bounded aggregation tree.

    Returns the root.  Ordering is by node id, so the shape is
    deterministic; in deployment the parent is located "using the
    standard OceanStore location mechanism".
    """
    if not nodes:
        raise ValueError("need at least one node")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    ordered = sorted(nodes, key=lambda n: n.node_id)
    root = ordered[0]
    frontier = [root]
    index = 1
    while index < len(ordered):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                if index >= len(ordered):
                    break
                child = ordered[index]
                child.parent = parent
                next_frontier.append(child)
                index += 1
        frontier = next_frontier or frontier
    return root
