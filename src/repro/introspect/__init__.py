"""Introspection: observation, analysis, optimization (Section 4.7).

The cycle of Figure 7 -- computation observed by verified event handlers
(:mod:`~repro.introspect.dsl`) summarizing into soft-state databases
(:mod:`~repro.introspect.database`), aggregated up a hierarchy
(:mod:`~repro.introspect.hierarchy`), driving optimization modules:
cluster recognition (:mod:`~repro.introspect.clustering`), replica
management (:mod:`~repro.introspect.replica_mgmt`), and prefetching
(:mod:`~repro.introspect.prefetch`).
"""

from repro.introspect.clustering import (
    Cluster,
    SemanticDistanceGraph,
    cluster_of,
    detect_clusters,
)
from repro.introspect.confidence import ConfidenceEstimator
from repro.introspect.database import SummaryDatabase, SummaryEntry
from repro.introspect.dsl import (
    Average,
    BinOp,
    BoolOp,
    CompiledHandler,
    Const,
    Count,
    Field,
    Filter,
    HandlerProgram,
    MapTo,
    Not,
    Rate,
    ResourceLimits,
    Threshold,
    VerificationError,
    evaluate,
    verify_program,
)
from repro.introspect.events import Event, EventBus
from repro.introspect.hierarchy import IntrospectionNode, Summary, build_hierarchy
from repro.introspect.migration import (
    MigrationCycle,
    MigrationDetector,
    PrefetchPlan,
    SiteAccess,
    plan_prefetch,
)
from repro.introspect.prefetch import (
    MarkovPrefetcher,
    PrefetchStats,
    evaluate_prefetcher,
)
from repro.introspect.replica_mgmt import (
    DecisionKind,
    ReplicaDecision,
    ReplicaManager,
)

__all__ = [
    "Average",
    "BinOp",
    "BoolOp",
    "Cluster",
    "CompiledHandler",
    "ConfidenceEstimator",
    "Const",
    "Count",
    "DecisionKind",
    "Event",
    "EventBus",
    "Field",
    "Filter",
    "HandlerProgram",
    "IntrospectionNode",
    "MapTo",
    "MarkovPrefetcher",
    "MigrationCycle",
    "MigrationDetector",
    "Not",
    "PrefetchPlan",
    "SiteAccess",
    "plan_prefetch",
    "PrefetchStats",
    "Rate",
    "ReplicaDecision",
    "ReplicaManager",
    "ResourceLimits",
    "SemanticDistanceGraph",
    "Summary",
    "SummaryDatabase",
    "SummaryEntry",
    "Threshold",
    "VerificationError",
    "build_hierarchy",
    "cluster_of",
    "detect_clusters",
    "evaluate",
    "evaluate_prefetcher",
    "verify_program",
]
