"""Introspective prefetching (Sections 4.7.2 and 5).

The Status section reports: "We have implemented the introspective
prefetching mechanism for a local file system.  Testing showed that the
method correctly captured high-order correlations, even in the presence
of noise."

We implement a PPM-style multi-order Markov predictor over object-access
streams: contexts of length up to ``max_order`` map to next-access
frequency counts, and prediction backs off from the longest matching
context.  High-order correlations (A,B -> C even though B alone is
ambiguous) are exactly what the longer contexts capture; noise dilutes
counts but leaves the argmax intact until it dominates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.util.ids import GUID


@dataclass
class MarkovPrefetcher:
    """Multi-order context predictor with longest-match backoff."""

    max_order: int = 3
    _contexts: dict[tuple[GUID, ...], dict[GUID, int]] = field(default_factory=dict)
    _history: deque = field(default_factory=deque)
    trained_accesses: int = 0

    def __post_init__(self) -> None:
        if self.max_order < 1:
            raise ValueError("max_order must be >= 1")

    # -- training ----------------------------------------------------------------

    def record_access(self, obj: GUID) -> None:
        """Feed one access; updates every context order ending here."""
        history = tuple(self._history)
        for order in range(1, min(self.max_order, len(history)) + 1):
            context = history[-order:]
            counts = self._contexts.setdefault(context, {})
            counts[obj] = counts.get(obj, 0) + 1
        self._history.append(obj)
        while len(self._history) > self.max_order:
            self._history.popleft()
        self.trained_accesses += 1

    def record_sequence(self, objects: list[GUID]) -> None:
        for obj in objects:
            self.record_access(obj)

    def reset_history(self) -> None:
        """Forget recent context (e.g. across sessions), keep the model."""
        self._history.clear()

    # -- prediction ----------------------------------------------------------------

    def predict(self, count: int = 1) -> list[GUID]:
        """The most likely next accesses given current history.

        Backs off from the longest matching context to shorter ones,
        merging candidates in priority order (longest context first,
        then frequency, then GUID for determinism).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        history = tuple(self._history)
        predictions: list[GUID] = []
        seen: set[GUID] = set()
        for order in range(min(self.max_order, len(history)), 0, -1):
            context = history[-order:]
            counts = self._contexts.get(context)
            if not counts:
                continue
            ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            for obj, _ in ranked:
                if obj not in seen:
                    predictions.append(obj)
                    seen.add(obj)
                if len(predictions) >= count:
                    return predictions
        return predictions

    def confidence(self) -> float:
        """How concentrated the longest matching context's counts are
        (1.0 = deterministic next access, ~0 = uniform)."""
        history = tuple(self._history)
        for order in range(min(self.max_order, len(history)), 0, -1):
            counts = self._contexts.get(history[-order:])
            if counts:
                total = sum(counts.values())
                return max(counts.values()) / total
        return 0.0


@dataclass(frozen=True, slots=True)
class PrefetchStats:
    accesses: int
    hits: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def evaluate_prefetcher(
    prefetcher: MarkovPrefetcher,
    trace: list[GUID],
    train_fraction: float = 0.5,
    prefetch_count: int = 1,
) -> PrefetchStats:
    """Train on a prefix of the trace, then measure hit rate on the rest.

    A "hit" means the actual next access was among the ``prefetch_count``
    objects the predictor would have prefetched.
    """
    if not 0 < train_fraction < 1:
        raise ValueError("train_fraction must be in (0, 1)")
    split = max(1, int(len(trace) * train_fraction))
    prefetcher.record_sequence(trace[:split])
    hits = 0
    accesses = 0
    for obj in trace[split:]:
        predicted = prefetcher.predict(count=prefetch_count)
        if obj in predicted:
            hits += 1
        accesses += 1
        prefetcher.record_access(obj)
    return PrefetchStats(accesses=accesses, hits=hits)
