"""Cluster recognition via semantic distance (Section 4.7.2).

"Each client machine contains an event handler triggered by each data
object access.  This handler incrementally constructs a graph
representing the semantic distance [28] among data objects, which
requires only a few operations per access.  Periodically, we run a
clustering algorithm that consumes this graph and detects clusters of
strongly-related objects. ... The result of the clustering algorithm is
forwarded to a global analysis layer that publishes small objects
describing established clusters."

Semantic distance (after the Seer project) is approximated by access
adjacency: objects referenced within a short window of one another are
semantically close.  The per-access handler does O(window) work; the
periodic clusterer thresholds edge weights and takes connected
components.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.util.ids import GUID


@dataclass
class SemanticDistanceGraph:
    """Incrementally built co-access graph.

    ``window`` is the number of recent accesses considered adjacent;
    each access adds weight 1/(distance in window) to edges between the
    new object and each recent one -- a few operations per access.
    """

    window: int = 4
    edges: dict[tuple[GUID, GUID], float] = field(default_factory=dict)
    _recent: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")

    def record_access(self, obj: GUID) -> None:
        for distance, prior in enumerate(reversed(self._recent), start=1):
            if prior == obj:
                continue
            key = (min(obj, prior), max(obj, prior))
            self.edges[key] = self.edges.get(key, 0.0) + 1.0 / distance
        self._recent.append(obj)
        while len(self._recent) > self.window:
            self._recent.popleft()

    def weight(self, a: GUID, b: GUID) -> float:
        return self.edges.get((min(a, b), max(a, b)), 0.0)

    def decay(self, factor: float = 0.5) -> None:
        """Age out stale affinity (adapting "to the stability of the input")."""
        if not 0 < factor <= 1:
            raise ValueError("decay factor must be in (0, 1]")
        self.edges = {k: w * factor for k, w in self.edges.items() if w * factor > 1e-6}


@dataclass(frozen=True, slots=True)
class Cluster:
    """A published description of strongly-related objects."""

    members: frozenset[GUID]

    @property
    def size(self) -> int:
        return len(self.members)


def detect_clusters(
    graph: SemanticDistanceGraph, min_weight: float = 1.0, min_size: int = 2
) -> list[Cluster]:
    """Threshold edges, take connected components, keep real clusters.

    Deterministic: components are discovered in GUID order.
    """
    adjacency: dict[GUID, set[GUID]] = {}
    for (a, b), weight in graph.edges.items():
        if weight >= min_weight:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
    seen: set[GUID] = set()
    clusters = []
    for start in sorted(adjacency):
        if start in seen:
            continue
        component = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in component:
                    component.add(neighbor)
                    stack.append(neighbor)
        seen |= component
        if len(component) >= min_size:
            clusters.append(Cluster(members=frozenset(component)))
    return clusters


def cluster_of(clusters: list[Cluster], obj: GUID) -> Cluster | None:
    """The published cluster containing ``obj``, if any -- what remote
    optimization modules use to collocate and prefetch related files."""
    for cluster in clusters:
        if obj in cluster.members:
            return cluster
    return None
