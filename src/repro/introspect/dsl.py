"""The event-handler language (Section 4.7.1).

"We describe all event handlers in a simple domain-specific language.
This language includes primitives for operations like averaging and
filtering, but explicitly prohibits loops.  We expect this model to
provide sufficient power, flexibility, and extensibility, while enabling
the verification of security and resource consumption restrictions placed
on event handlers."

The language has two layers:

* **expressions** over a single event: field access, constants,
  arithmetic, comparisons, boolean connectives.  The AST has no loop or
  call node, so termination is structural; :func:`verify_program` bounds
  size and depth (the resource restriction).
* **stages** over the event stream: ``Filter``, ``MapTo``, ``Average``,
  ``Count``, ``Rate``, ``Threshold``.  Each stage does O(1) work per
  event with O(window) state.

A :class:`HandlerProgram` compiles to a Python callable fed by the event
bus; outputs land in the local summary database.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Union

from repro.introspect.events import Event


class VerificationError(ValueError):
    """Program exceeds resource limits or is malformed."""


# -- expression AST ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Field:
    name: str


@dataclass(frozen=True, slots=True)
class Const:
    value: Any


@dataclass(frozen=True, slots=True)
class BinOp:
    op: str  # +, -, *, /, ==, !=, <, <=, >, >=
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class BoolOp:
    op: str  # and, or
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Expr"


Expr = Union[Field, Const, BinOp, BoolOp, Not]

_BIN_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b else 0.0,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate(expr: Expr, event: Event) -> Any:
    """Evaluate an expression against one event.  Structurally terminating:
    the AST is finite and has no loops or calls."""
    if isinstance(expr, Field):
        return event.get(expr.name)
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, BinOp):
        fn = _BIN_OPS.get(expr.op)
        if fn is None:
            raise VerificationError(f"unknown operator {expr.op!r}")
        try:
            return fn(evaluate(expr.left, event), evaluate(expr.right, event))
        except TypeError:
            return None
    if isinstance(expr, BoolOp):
        left = bool(evaluate(expr.left, event))
        if expr.op == "and":
            return left and bool(evaluate(expr.right, event))
        if expr.op == "or":
            return left or bool(evaluate(expr.right, event))
        raise VerificationError(f"unknown boolean operator {expr.op!r}")
    if isinstance(expr, Not):
        return not evaluate(expr.operand, event)
    raise VerificationError(f"unknown expression node {type(expr).__name__}")


def _expr_size(expr: Expr) -> int:
    if isinstance(expr, (Field, Const)):
        return 1
    if isinstance(expr, (BinOp, BoolOp)):
        return 1 + _expr_size(expr.left) + _expr_size(expr.right)
    if isinstance(expr, Not):
        return 1 + _expr_size(expr.operand)
    raise VerificationError(f"unknown expression node {type(expr).__name__}")


# -- stream stages -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Filter:
    """Pass only events where the predicate holds."""

    predicate: Expr


@dataclass(frozen=True, slots=True)
class MapTo:
    """Project each event to a value (fed to downstream aggregation)."""

    expr: Expr


@dataclass(frozen=True, slots=True)
class Average:
    """Sliding-window mean of the mapped value."""

    window: int


@dataclass(frozen=True, slots=True)
class Count:
    """Running count of events that reached this stage."""


@dataclass(frozen=True, slots=True)
class Rate:
    """Events per millisecond over a sliding time window."""

    window_ms: float


@dataclass(frozen=True, slots=True)
class Threshold:
    """Emit only when the aggregated value crosses the bound."""

    minimum: float


Stage = Union[Filter, MapTo, Average, Count, Rate, Threshold]


@dataclass
class HandlerProgram:
    """A named pipeline of stages writing to a summary key."""

    name: str
    stages: list[Stage] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class ResourceLimits:
    """The enforceable resource-consumption restrictions."""

    max_stages: int = 8
    max_expr_size: int = 32
    max_window: int = 1024


def verify_program(program: HandlerProgram, limits: ResourceLimits = ResourceLimits()) -> None:
    """Static verification: bounded stages, bounded expressions, bounded
    windows.  Loops are impossible by construction (no loop node exists);
    this check bounds everything else a handler could cost."""
    if not program.stages:
        raise VerificationError("program has no stages")
    if len(program.stages) > limits.max_stages:
        raise VerificationError(
            f"too many stages: {len(program.stages)} > {limits.max_stages}"
        )
    for stage in program.stages:
        if isinstance(stage, Filter):
            size = _expr_size(stage.predicate)
            if size > limits.max_expr_size:
                raise VerificationError(f"filter expression too large: {size}")
        elif isinstance(stage, MapTo):
            size = _expr_size(stage.expr)
            if size > limits.max_expr_size:
                raise VerificationError(f"map expression too large: {size}")
        elif isinstance(stage, Average):
            if not 1 <= stage.window <= limits.max_window:
                raise VerificationError(f"average window out of bounds: {stage.window}")
        elif isinstance(stage, Rate):
            if stage.window_ms <= 0:
                raise VerificationError("rate window must be positive")
        elif isinstance(stage, (Count, Threshold)):
            pass
        else:
            raise VerificationError(f"unknown stage {type(stage).__name__}")


class CompiledHandler:
    """Executable form of a verified program.

    Call it with each event; it returns the pipeline output for that
    event (None when filtered out or below threshold) and remembers the
    latest emitted value.
    """

    def __init__(self, program: HandlerProgram, limits: ResourceLimits = ResourceLimits()) -> None:
        verify_program(program, limits)
        self.program = program
        self._avg_windows: dict[int, deque] = {}
        self._counts: dict[int, int] = {}
        self._rate_windows: dict[int, deque] = {}
        self.last_value: Any = None

    def __call__(self, event: Event) -> Any:
        value: Any = event
        for i, stage in enumerate(self.program.stages):
            if isinstance(stage, Filter):
                if not evaluate(stage.predicate, event):
                    return None
            elif isinstance(stage, MapTo):
                value = evaluate(stage.expr, event)
            elif isinstance(stage, Average):
                window = self._avg_windows.setdefault(i, deque(maxlen=stage.window))
                if not isinstance(value, (int, float)):
                    return None
                window.append(float(value))
                value = sum(window) / len(window)
            elif isinstance(stage, Count):
                self._counts[i] = self._counts.get(i, 0) + 1
                value = self._counts[i]
            elif isinstance(stage, Rate):
                window = self._rate_windows.setdefault(i, deque())
                window.append(event.time_ms)
                cutoff = event.time_ms - stage.window_ms
                while window and window[0] < cutoff:
                    window.popleft()
                value = len(window) / stage.window_ms
            elif isinstance(stage, Threshold):
                if not isinstance(value, (int, float)) or value < stage.minimum:
                    return None
        self.last_value = value
        return value
