"""Confidence estimation for introspective optimizations (Section 4.7.2).

"[OceanStore] performs continuous confidence estimation on its own
optimizations in order to reduce harmful changes and feedback cycles."

:class:`ConfidenceEstimator` scores each *kind* of optimization (replica
creation, migration, prefetch, ...) by whether its past actions improved
the metric they targeted.  Optimizers consult :meth:`should_act` before
acting: a kind whose recent actions have been harmful is throttled until
evidence recovers -- damping exactly the feedback cycles the paper warns
about (e.g. replica creation reacting to load that the previous replica
creation caused).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass
class _PendingAction:
    kind: str
    metric_before: float


@dataclass
class _KindStats:
    #: exponentially weighted success estimate, optimistic start
    confidence: float = 0.7
    actions: int = 0
    improvements: int = 0


class ConfidenceEstimator:
    """EWMA success tracking per optimization kind.

    Metrics are "lower is better" (latency, load imbalance); an action
    *improves* if the after-metric is below the before-metric by at
    least ``min_improvement`` (relative).
    """

    def __init__(
        self,
        alpha: float = 0.3,
        act_threshold: float = 0.4,
        min_improvement: float = 0.0,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0 <= act_threshold < 1:
            raise ValueError(f"act_threshold must be in [0, 1), got {act_threshold}")
        self.alpha = alpha
        self.act_threshold = act_threshold
        self.min_improvement = min_improvement
        self._kinds: dict[str, _KindStats] = {}
        self._pending: dict[int, _PendingAction] = {}
        self._ids = itertools.count(1)

    # -- recording -----------------------------------------------------------

    def begin_action(self, kind: str, metric_before: float) -> int:
        """Register an optimization about to run; returns an action id."""
        action_id = next(self._ids)
        self._pending[action_id] = _PendingAction(kind, metric_before)
        return action_id

    def complete_action(self, action_id: int, metric_after: float) -> bool:
        """Record the post-action metric; returns whether it improved."""
        pending = self._pending.pop(action_id, None)
        if pending is None:
            raise KeyError(f"unknown or already-completed action {action_id}")
        stats = self._kinds.setdefault(pending.kind, _KindStats())
        baseline = pending.metric_before * (1.0 - self.min_improvement)
        improved = metric_after < baseline or (
            pending.metric_before == 0 and metric_after <= 0
        )
        stats.actions += 1
        if improved:
            stats.improvements += 1
        stats.confidence = (
            (1 - self.alpha) * stats.confidence + self.alpha * (1.0 if improved else 0.0)
        )
        return improved

    def abandon_action(self, action_id: int) -> None:
        """The action never ran (no outcome to score)."""
        self._pending.pop(action_id, None)

    # -- queries ----------------------------------------------------------------

    def confidence(self, kind: str) -> float:
        stats = self._kinds.get(kind)
        return stats.confidence if stats is not None else 0.7

    def should_act(self, kind: str) -> bool:
        """Gate for optimizers: act only while confidence holds up."""
        return self.confidence(kind) >= self.act_threshold

    def report(self) -> dict[str, dict[str, float]]:
        return {
            kind: {
                "confidence": stats.confidence,
                "actions": stats.actions,
                "improvements": stats.improvements,
            }
            for kind, stats in sorted(self._kinds.items())
        }
