"""Periodic-migration detection and prefetch (Section 4.7.2).

"nodes regularly analyze global usage trends, allowing additional
optimizations.  For example, OceanStore can detect periodic migration of
clusters from site to site and prefetch data based on these cycles.
Thus users will find their project files and email folder on a local
machine during the work day, and waiting for them on their home machines
at night."

:class:`MigrationDetector` consumes (object, site, time) access
observations, bins them into phase histograms over a candidate period,
and scores periodicity.  With a confident cycle it predicts which site
will want a cluster at any future time, so an optimizer can move
replicas *ahead of* the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.ids import GUID


@dataclass(frozen=True, slots=True)
class SiteAccess:
    """One observed access: which site touched the object, and when."""

    object_guid: GUID
    site: str
    time_ms: float


@dataclass(frozen=True, slots=True)
class MigrationCycle:
    """A detected periodic pattern for one cluster of objects."""

    period_ms: float
    #: phase windows: site -> (start fraction, end fraction) of the period
    site_phases: dict

    def site_at(self, time_ms: float) -> str | None:
        """Which site the cycle predicts will be active at ``time_ms``."""
        phase = (time_ms % self.period_ms) / self.period_ms
        for site, (start, end) in self.site_phases.items():
            if start <= phase < end:
                return site
        return None


@dataclass
class MigrationDetector:
    """Detects site periodicity from access history.

    ``period_ms`` is the candidate cycle (a day, for the paper's
    work/home example); ``bins`` is the phase resolution.  Detection
    requires ``min_observations`` and a dominant site per phase window
    (purity above ``min_purity``) over at least two full periods.
    """

    period_ms: float = 86_400_000.0
    bins: int = 24
    min_observations: int = 20
    min_purity: float = 0.8
    _history: list[SiteAccess] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period_ms <= 0 or self.bins < 2:
            raise ValueError("period must be positive and bins >= 2")
        if not 0.5 < self.min_purity <= 1.0:
            raise ValueError("min_purity must be in (0.5, 1.0]")

    def observe(self, access: SiteAccess) -> None:
        self._history.append(access)

    def observe_all(self, accesses: list[SiteAccess]) -> None:
        self._history.extend(accesses)

    @property
    def observations(self) -> int:
        return len(self._history)

    def detect(self) -> MigrationCycle | None:
        """Fit the candidate period; None unless the cycle is clean."""
        if len(self._history) < self.min_observations:
            return None
        span = max(a.time_ms for a in self._history) - min(
            a.time_ms for a in self._history
        )
        if span < 2 * self.period_ms * 0.5:  # need ~two periods of data
            return None
        # Per-phase-bin site counts.
        bin_counts: list[dict[str, int]] = [dict() for _ in range(self.bins)]
        for access in self._history:
            phase_bin = int(
                (access.time_ms % self.period_ms) / self.period_ms * self.bins
            ) % self.bins
            counts = bin_counts[phase_bin]
            counts[access.site] = counts.get(access.site, 0) + 1
        # Dominant site per occupied bin; bail on impure bins.
        dominant: list[str | None] = []
        for counts in bin_counts:
            if not counts:
                dominant.append(None)
                continue
            site, count = max(counts.items(), key=lambda kv: kv[1])
            if count / sum(counts.values()) < self.min_purity:
                return None  # no clean cycle
            dominant.append(site)
        # Contract consecutive bins into site phase windows.
        site_phases: dict[str, tuple[float, float]] = {}
        i = 0
        while i < self.bins:
            site = dominant[i]
            if site is None:
                i += 1
                continue
            start = i
            while i < self.bins and dominant[i] == site:
                i += 1
            window = (start / self.bins, i / self.bins)
            if site in site_phases:
                # Site active in two disjoint windows: extend greedily to
                # the union's bounding window (coarse but monotone).
                old = site_phases[site]
                window = (min(old[0], window[0]), max(old[1], window[1]))
            site_phases[site] = window
        if len(site_phases) < 2:
            return None  # no migration, just one site
        return MigrationCycle(period_ms=self.period_ms, site_phases=site_phases)


@dataclass(frozen=True, slots=True)
class PrefetchPlan:
    """Move the cluster to ``site`` before ``when_ms``."""

    site: str
    when_ms: float


def plan_prefetch(
    cycle: MigrationCycle, now_ms: float, lead_ms: float = 1_800_000.0
) -> PrefetchPlan | None:
    """Where should the data be ``lead_ms`` from now?

    Returns a plan when the predicted site at (now + lead) differs from
    the site at now -- i.e. a transition is coming and data should start
    moving; None when no transition is imminent.
    """
    if lead_ms <= 0:
        raise ValueError("lead_ms must be positive")
    current = cycle.site_at(now_ms)
    upcoming = cycle.site_at(now_ms + lead_ms)
    if upcoming is None or upcoming == current:
        return None
    return PrefetchPlan(site=upcoming, when_ms=now_ms + lead_ms)
