"""Process-wide metrics registry: counters, gauges, and histograms.

Metrics are keyed by name plus a tuple of ``label=value`` pairs, in the
style of Prometheus client libraries.  Histograms reuse
:class:`repro.sim.stats.Distribution` so every quantile the benchmarks
report comes from one implementation.

Label sets are bounded per metric name: once a metric has accumulated
``max_label_sets`` distinct label combinations, further combinations fold
into a single reserved overflow series (and are counted in
:attr:`MetricsRegistry.dropped_label_sets`) instead of growing memory
without bound -- mis-labelled instrumentation degrades gracefully rather
than taking the process down.
"""

from __future__ import annotations

from repro.sim.stats import Distribution

#: label-set key: sorted tuple of (label, value) string pairs
LabelKey = tuple[tuple[str, str], ...]

#: reserved series that absorbs label sets beyond the cardinality cap
OVERFLOW_KEY: LabelKey = (("overflow", "true"),)


def label_key(labels: dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label mapping."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def flatten_name(name: str, key: LabelKey) -> str:
    """``name{k=v,...}`` rendering used for JSON export and tables."""
    if not key:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class MetricsRegistry:
    """Counters, gauges, and histograms with label-cardinality limits.

    All mutation methods are cheap (a dict lookup and an add); the
    zero-overhead disabled path lives one level up, in
    :class:`repro.telemetry.NullTelemetry`.
    """

    def __init__(self, max_label_sets: int = 64) -> None:
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self.max_label_sets = max_label_sets
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._gauges: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, dict[LabelKey, Distribution]] = {}
        #: label sets folded into the overflow series, by metric name
        self.dropped_label_sets: dict[str, int] = {}

    # -- internal ---------------------------------------------------------

    def _key_for(self, name: str, series: dict, labels: dict) -> LabelKey:
        key = label_key(labels)
        if key in series or len(series) < self.max_label_sets:
            return key
        self.dropped_label_sets[name] = self.dropped_label_sets.get(name, 0) + 1
        return OVERFLOW_KEY

    # -- mutation ---------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        series = self._counters.setdefault(name, {})
        key = self._key_for(name, series, labels)
        series[key] = series.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        series = self._gauges.setdefault(name, {})
        key = self._key_for(name, series, labels)
        series[key] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        series = self._histograms.setdefault(name, {})
        key = self._key_for(name, series, labels)
        dist = series.get(key)
        if dist is None:
            dist = series[key] = Distribution()
        dist.add(value)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.dropped_label_sets.clear()

    # -- reads ------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        return self._counters.get(name, {}).get(label_key(labels), 0)

    def gauge_value(self, name: str, **labels: object) -> float | None:
        return self._gauges.get(name, {}).get(label_key(labels))

    def histogram(self, name: str, **labels: object) -> Distribution | None:
        return self._histograms.get(name, {}).get(label_key(labels))

    def counter_total(self, name: str) -> float:
        """Sum of one counter across every label set."""
        return sum(self._counters.get(name, {}).values())

    def label_sets(self, name: str) -> list[LabelKey]:
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                return list(table[name])
        return []

    # -- export -----------------------------------------------------------

    def export(self, quantiles: tuple[float, ...] | None = None) -> dict:
        """Plain JSON-able dict, same shape discipline as the
        ``benchmarks/results/*.json`` files (string keys, numbers/dicts
        as values) so traces and benchmark series can live side by side.

        ``quantiles`` overrides the default p50/p90/p95/p99 keys in
        histogram summaries (SLO reporting wants p99.9 and friends).
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, series in sorted(self._counters.items()):
            for key, value in sorted(series.items()):
                out["counters"][flatten_name(name, key)] = value
        for name, series in sorted(self._gauges.items()):
            for key, value in sorted(series.items()):
                out["gauges"][flatten_name(name, key)] = value
        for name, series in sorted(self._histograms.items()):
            for key, dist in sorted(series.items()):
                out["histograms"][flatten_name(name, key)] = dist.summary(
                    quantiles
                )
        if self.dropped_label_sets:
            out["dropped_label_sets"] = dict(sorted(self.dropped_label_sets.items()))
        return out
