"""Causal trace spans for the simulated system.

A :class:`Span` covers one logical operation (a Bloom query, a PBFT
phase, an archival encode).  Spans nest: the tracer keeps a *current*
span, and new spans become children of it.  Causality crosses scheduling
boundaries via :meth:`Tracer.wrap`: the simulation kernel wraps every
scheduled callback so it runs under the span that was current when it
was scheduled -- a message handler's spans therefore nest under the span
that sent the message, and one client update yields a single tree
covering routing, agreement, dissemination, and archival.

Timestamps come from an injected ``clock`` callable (virtual kernel
milliseconds in a deployment; a zero clock for unit tests), so traces
are deterministic.
"""

from __future__ import annotations

from typing import Callable


class Span:
    """One timed, labelled operation in a causal tree."""

    __slots__ = ("name", "span_id", "parent_id", "labels", "start_ms", "end_ms")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        labels: dict[str, str],
        start_ms: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.labels = labels
        self.start_ms = start_ms
        self.end_ms: float | None = None

    @property
    def duration_ms(self) -> float | None:
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _ActiveSpan:
    """Context manager making a span current for its ``with`` body."""

    __slots__ = ("_tracer", "span", "_prev")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._prev: Span | None = None

    def __enter__(self) -> Span:
        self._prev = self._tracer._current
        self._tracer._current = self.span
        return self.span

    def __exit__(self, *exc) -> None:
        self.span.end_ms = self._tracer.clock()
        self._tracer._current = self._prev
        return None


class _NullSpanContext:
    """Shared no-op stand-in when tracing is disabled or saturated."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpanContext()


class Tracer:
    """Span factory, current-span bookkeeping, and tree assembly.

    ``max_spans`` bounds memory on long runs: past the cap, new spans are
    silently replaced by :data:`NULL_SPAN` and counted in
    :attr:`dropped`, so causality in the retained prefix stays intact.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        max_spans: int = 20_000,
    ) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._current: Span | None = None
        self._next_id = 0

    # -- span lifecycle ---------------------------------------------------

    @property
    def current(self) -> Span | None:
        return self._current

    def span(self, name: str, **labels: object):
        """Start a child of the current span; use as a context manager."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return NULL_SPAN
        parent = self._current
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            labels={k: str(v) for k, v in labels.items()} if labels else {},
            start_ms=self.clock(),
        )
        self._next_id += 1
        self.spans.append(span)
        return _ActiveSpan(self, span)

    # -- cross-event propagation ------------------------------------------

    def activate(self, span: Span | None) -> Span | None:
        """Make ``span`` current; returns the previous current span."""
        prev = self._current
        self._current = span
        return prev

    def wrap(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Bind ``callback`` to the current span for later execution.

        If no span is current, the callback is returned unchanged, so
        untraced work (timers, background sweeps) costs nothing.
        """
        parent = self._current
        if parent is None:
            return callback

        def traced() -> None:
            prev = self.activate(parent)
            try:
                callback()
            finally:
                self.activate(prev)

        return traced

    def reset(self) -> None:
        self.spans.clear()
        self.dropped = 0
        self._current = None
        self._next_id = 0

    # -- assembly ---------------------------------------------------------

    def span_tree(self) -> list[dict]:
        """Nested JSON-able dicts, one per root span, children in start
        order."""
        nodes: dict[int, dict] = {}
        roots: list[dict] = []
        for span in self.spans:
            node = {
                "name": span.name,
                "labels": dict(span.labels),
                "start_ms": span.start_ms,
                "end_ms": span.end_ms,
                "children": [],
            }
            nodes[span.span_id] = node
            parent = nodes.get(span.parent_id) if span.parent_id is not None else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def render(self, max_depth: int | None = None) -> str:
        """ASCII span tree, one line per span."""
        lines: list[str] = []

        def emit(node: dict, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            labels = node["labels"]
            label_text = (
                " {" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if node["end_ms"] is not None:
                timing = (
                    f"  @{node['start_ms']:.1f}ms "
                    f"+{node['end_ms'] - node['start_ms']:.1f}ms"
                )
            else:
                timing = f"  @{node['start_ms']:.1f}ms (open)"
            lines.append("  " * depth + node["name"] + label_text + timing)
            for child in node["children"]:
                emit(child, depth + 1)

        for root in self.span_tree():
            emit(root, 0)
        if self.dropped:
            lines.append(f"... {self.dropped} span(s) dropped past cap")
        return "\n".join(lines)

    def names(self) -> set[str]:
        """Distinct span names recorded (handy for assertions)."""
        return {span.name for span in self.spans}
