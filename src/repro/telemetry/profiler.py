"""Kernel profiler: wall-clock and event-count attribution of callbacks.

ROADMAP item 1 gates every scaling goal on the DES kernel's throughput;
its first step is *profile the hot path*.  This module answers "where
does simulated wall time go?" by attributing every fired kernel callback
to a ``(subsystem, phase)`` bucket -- the same vocabulary the network's
phase ledger uses (``pbft/prepare``, ``dissemination/push``, ...) -- so
the before/after of a kernel overhaul reads in protocol terms, not
function names.

The profiler is **opt-in** (``TelemetryConfig(profile=True)``) and
deliberately cheap: the kernel calls :meth:`KernelProfiler.on_fire` once
per executed event with a pre-computed label, two ``perf_counter``
reads bracket the callback, and classification of each distinct label
string happens once (memoized).  When no profiler is installed the
kernel pays a single attribute check per event.

Two kinds of output, kept strictly apart so CI can gate one and merely
watch the other:

* **deterministic** -- per-bucket call counts, total events, peak
  pending-heap depth, and the simulated time span.  Same seed, same
  numbers; the ``events_per_second`` bench gates on these.
* **wall** -- per-bucket wall seconds and events/sec.  Machine-
  dependent, reported for humans and trend lines only.
"""

from __future__ import annotations

#: labels the classifier maps via a lowercase ``subsystem.phase`` prefix
#: (the labels protocol code passes to ``call_after``/``Timer``)
_SUBSYSTEM_PREFIXES = frozenset(
    {
        "pbft",
        "dissemination",
        "recovery",
        "rings",
        "routing",
        "archival",
        "net",
        "sim",
        "introspect",
    }
)

#: qualname class -> subsystem, for callbacks scheduled without a label
#: (lambdas and closures fall back to their qualified name)
_CLASS_SUBSYSTEM = {
    "InnerRing": "pbft",
    "PBFTReplica": "pbft",
    "SecondaryTier": "dissemination",
    "SecondaryReplica": "dissemination",
    "DisseminationTree": "dissemination",
    "FailureDetector": "recovery",
    "RecoveryManager": "recovery",
    "RoutingRepairer": "recovery",
    "TreeRepairer": "recovery",
    "HandoffManager": "rings",
    "RingDirectory": "rings",
    "FailureInjector": "faults",
    "NetworkFaultInjector": "faults",
    "FragmentFetcher": "archival",
    "RepairSweeper": "archival",
    "PlaxtonMesh": "routing",
    "SaltedRouter": "routing",
    "Network": "net",
    "Timer": "sim",
    "Kernel": "sim",
}


def classify(label: str | None) -> tuple[str, str]:
    """Map one kernel event label to a ``(subsystem, phase)`` bucket.

    Rules, in order:

    1. ``net.deliver:<sub>/<ph>`` -- a network delivery callback; the
       wall time belongs to the protocol handler that runs inside it, so
       the bucket is the message's own phase tag (``pbft/prepare``, ...).
       Untagged traffic keeps the ledger's ``other/other`` convention.
    2. ``<subsystem>.<phase>`` -- explicit labels from protocol code
       (``pbft.batch_flush[2]``, ``recovery.heartbeat``); a trailing
       ``[index]`` is stripped so replicas share a bucket.
    3. ``<Class>.<method>...`` -- unlabeled callbacks named by their
       qualified name; the class maps to a subsystem and the method
       (sans leading underscores and ``<locals>`` scaffolding) is the
       phase.  Bare repeating timers become ``sim/timer``.
    4. anything else -- ``other/other``, counted but unattributed.
    """
    if not label:
        return ("other", "unlabeled")
    if label.startswith("net.deliver:"):
        sub, _, ph = label[len("net.deliver:") :].partition("/")
        return (sub or "other", ph or "other")
    head, dot, rest = label.partition(".")
    if dot and head in _SUBSYSTEM_PREFIXES:
        phase = rest.split("[", 1)[0]
        return (head, phase or "other")
    if dot and head in _CLASS_SUBSYSTEM:
        if head == "Timer":
            return ("sim", "timer")
        parts = [p for p in rest.split(".") if p and p != "<locals>"]
        phase = parts[0].lstrip("_") if parts else "call"
        if phase == "<lambda>":
            phase = parts[1].lstrip("_") if len(parts) > 1 else "lambda"
        return (_CLASS_SUBSYSTEM[head], phase or "call")
    return ("other", "other")


class _Bucket:
    __slots__ = ("calls", "wall_s")

    def __init__(self) -> None:
        self.calls = 0
        self.wall_s = 0.0


class KernelProfiler:
    """Accumulates per-bucket callback cost; installed as
    ``kernel.profiler`` (the kernel stays import-free of telemetry --
    any object with :meth:`on_fire` works)."""

    def __init__(self) -> None:
        self._classify_cache: dict[str | None, tuple[str, str]] = {}
        self.reset()

    def reset(self) -> None:
        self.buckets: dict[tuple[str, str], _Bucket] = {}
        self.events_total = 0
        self.wall_total_s = 0.0
        self.max_pending = 0
        self._pending_sum = 0
        self.first_fire_ms: float | None = None
        self.last_fire_ms = 0.0

    # -- the kernel hot-path hook -----------------------------------------

    def on_fire(
        self, label: str | None, elapsed_s: float, time_ms: float, pending: int
    ) -> None:
        key = self._classify_cache.get(label)
        if key is None:
            key = self._classify_cache[label] = classify(label)
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = self.buckets[key] = _Bucket()
        bucket.calls += 1
        bucket.wall_s += elapsed_s
        self.events_total += 1
        self.wall_total_s += elapsed_s
        self._pending_sum += pending
        if pending > self.max_pending:
            self.max_pending = pending
        if self.first_fire_ms is None:
            self.first_fire_ms = time_ms
        self.last_fire_ms = time_ms

    # -- derived ----------------------------------------------------------

    @property
    def mean_pending(self) -> float:
        if not self.events_total:
            return 0.0
        return self._pending_sum / self.events_total

    @property
    def sim_span_ms(self) -> float:
        if self.first_fire_ms is None:
            return 0.0
        return self.last_fire_ms - self.first_fire_ms

    @property
    def events_per_sim_ms(self) -> float:
        """The per-tick event-rate gauge: executed events per simulated
        millisecond over the observed window (deterministic)."""
        span = self.sim_span_ms
        if span <= 0.0:
            return float(self.events_total)
        return self.events_total / span

    @property
    def events_per_wall_s(self) -> float:
        if self.wall_total_s <= 0.0:
            return 0.0
        return self.events_total / self.wall_total_s

    def attributed_wall_fraction(self) -> float:
        """Fraction of measured callback wall time landing in a named
        (non-``other``) subsystem bucket -- the acceptance metric."""
        if self.wall_total_s <= 0.0:
            return 1.0
        named = sum(
            b.wall_s for (sub, _), b in self.buckets.items() if sub != "other"
        )
        return named / self.wall_total_s

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able state, deterministic and wall-clock parts separate."""
        det_buckets = {
            f"{sub}/{ph}": {"calls": b.calls}
            for (sub, ph), b in sorted(self.buckets.items())
        }
        wall_buckets = {
            f"{sub}/{ph}": {"wall_s": round(b.wall_s, 6)}
            for (sub, ph), b in sorted(self.buckets.items())
        }
        return {
            "deterministic": {
                "events_total": self.events_total,
                "buckets": det_buckets,
                "max_pending": self.max_pending,
                "mean_pending": round(self.mean_pending, 3),
                "sim_span_ms": round(self.sim_span_ms, 1),
                "events_per_sim_ms": round(self.events_per_sim_ms, 6),
            },
            "wall": {
                "wall_total_s": round(self.wall_total_s, 6),
                "events_per_wall_s": round(self.events_per_wall_s, 1),
                "attributed_fraction": round(
                    self.attributed_wall_fraction(), 4
                ),
                "buckets": wall_buckets,
            },
        }

    def publish(self, telemetry) -> None:
        """Push the pending-depth and event-rate gauges into a live
        telemetry registry (no-op against the disabled singleton)."""
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.gauge("kernel_pending_max", float(self.max_pending))
        telemetry.gauge("kernel_pending_mean", self.mean_pending)
        telemetry.gauge("kernel_events_per_sim_ms", self.events_per_sim_ms)
        telemetry.gauge("kernel_events_total", float(self.events_total))

    def render(self, top: int = 10) -> str:
        """Human report: top-N hot buckets by wall share."""
        return render_snapshot(self.snapshot(), top=top)


def render_snapshot(snapshot: dict, top: int = 10) -> str:
    """Render a :meth:`KernelProfiler.snapshot` dict (e.g. one attached
    to a :class:`~repro.chaos.scenarios.ChaosReport`) as the same
    top-N table :meth:`KernelProfiler.render` produces live."""
    det = snapshot.get("deterministic", {})
    wall = snapshot.get("wall", {})
    wall_buckets = wall.get("buckets", {})
    det_buckets = det.get("buckets", {})
    total = wall.get("wall_total_s", 0.0) or 1.0
    lines = [
        f"kernel profile: {det.get('events_total', 0)} events, "
        f"{wall.get('wall_total_s', 0.0) * 1e3:.1f}ms wall, "
        f"{wall.get('events_per_wall_s', 0.0):,.0f} events/s",
        f"  pending heap: max {det.get('max_pending', 0)}, "
        f"mean {det.get('mean_pending', 0.0):.1f}; "
        f"event rate {det.get('events_per_sim_ms', 0.0):.3f}/sim-ms "
        f"over {det.get('sim_span_ms', 0.0):.0f} sim-ms",
        f"  attributed wall time: "
        f"{wall.get('attributed_fraction', 0.0):.1%} in named buckets",
    ]
    ranked = sorted(
        wall_buckets.items(), key=lambda kv: (-kv[1]["wall_s"], kv[0])
    )
    width = max((len(name) for name, _ in ranked[:top]), default=10)
    lines.append(f"  {'bucket':<{width}}  {'calls':>8}  {'wall':>9}  share")
    for name, cell in ranked[:top]:
        calls = det_buckets.get(name, {}).get("calls", 0)
        lines.append(
            f"  {name:<{width}}  {calls:>8}  "
            f"{cell['wall_s'] * 1e3:>7.1f}ms  {cell['wall_s'] / total:>5.1%}"
        )
    if len(ranked) > top:
        rest = sum(cell["wall_s"] for _, cell in ranked[top:])
        lines.append(
            f"  ... {len(ranked) - top} more bucket(s), "
            f"{rest / total:.1%} of wall"
        )
    return "\n".join(lines)


__all__ = ["KernelProfiler", "classify", "render_snapshot"]
