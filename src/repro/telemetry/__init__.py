"""Out-of-band observability for the reproduction's own internals.

The paper's introspection layer (:mod:`repro.introspect`) models the
*mechanism described by the paper* -- observation modules feeding
optimization modules.  This package is different: it watches the
reproduction itself, answering "where did this update's latency go?" and
"how many Bloom queries missed per node?" without editing source.

Two pieces:

* a process-wide **metrics registry** (:mod:`repro.telemetry.metrics`)
  -- counters, gauges, and histograms keyed by name + label tuples, with
  label-cardinality limits and JSON export compatible with the
  ``benchmarks/results/*.json`` shape;
* **causal trace spans** (:mod:`repro.telemetry.tracing`) propagated
  through kernel scheduling and network message delivery, so one client
  update yields a single span tree covering Bloom lookups, Plaxton
  routing, PBFT phases, dissemination-tree pushes, and archival
  encode/placement.

Everything defaults to **off**: instrumented components take an optional
``telemetry`` argument and fall back to :data:`DISABLED`, a shared null
object whose methods do nothing, so the disabled path costs one
attribute load per instrumentation site.  Hot paths additionally guard
on ``telemetry.enabled`` to skip even argument construction.  (The
simulation kernel and network stay import-free of this package: they
accept any object with this interface, keeping :mod:`repro.sim` a leaf.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.telemetry.flightrec import FlightEvent, FlightRecorder
from repro.telemetry.metrics import (
    OVERFLOW_KEY,
    MetricsRegistry,
    flatten_name,
    label_key,
)
from repro.telemetry.profiler import KernelProfiler
from repro.telemetry.slo import SLORecorder, SLOViolation
from repro.telemetry.tracing import NULL_SPAN, Span, Tracer


class NullTelemetry:
    """The disabled telemetry object: every operation is a no-op.

    A single shared instance (:data:`DISABLED`) serves the entire
    process; ``span`` returns one preallocated null context manager, and
    ``wrap`` returns its argument unchanged, so leaving instrumentation
    in place costs essentially nothing when telemetry is off.
    """

    enabled = False
    #: no recorder when disabled (mirrors :attr:`Telemetry.flight`)
    flight = None
    #: no kernel profiler when disabled (mirrors :attr:`Telemetry.profiler`)
    profiler = None
    #: no SLO recorder when disabled (mirrors :attr:`Telemetry.slo`)
    slo = None

    def count(self, name: str, value: float = 1, **labels: object) -> None:
        return None

    def record(self, category: str, kind: str, **detail: object) -> None:
        return None

    def gauge(self, name: str, value: float, **labels: object) -> None:
        return None

    def observe(self, name: str, value: float, **labels: object) -> None:
        return None

    def span(self, name: str, **labels: object):
        return NULL_SPAN

    def wrap(self, callback: Callable[[], None]) -> Callable[[], None]:
        return callback

    def export(self, spans: bool = False, flight: bool = False) -> dict:
        return {}

    def render_spans(self, max_depth: int | None = None) -> str:
        return ""

    def reset(self) -> None:
        return None


#: The process-wide disabled singleton every component defaults to.
DISABLED = NullTelemetry()


def coalesce(telemetry) -> "Telemetry | NullTelemetry":
    """``telemetry`` if given, else the shared disabled singleton."""
    return telemetry if telemetry is not None else DISABLED


@dataclass
class TelemetryConfig:
    """Deployment knob for the telemetry subsystem (default: off)."""

    enabled: bool = False
    #: record causal trace spans (metrics stay on regardless)
    trace: bool = True
    #: distinct label sets per metric before folding into overflow
    max_label_sets: int = 64
    #: spans retained per run before new spans are dropped
    max_spans: int = 20_000
    #: keep a flight recorder (bounded structured-event ring buffer)
    flight: bool = True
    #: flight-recorder ring size; old events evict past this
    flight_capacity: int = 4096
    #: also record kernel schedule/fire events (noisy: one event per
    #: scheduled callback, so protocol events evict fast; opt-in)
    flight_kernel: bool = False
    #: kernel profiler: per-(subsystem, phase) wall/event attribution of
    #: callback execution (opt-in -- wall clocks are machine-dependent)
    profile: bool = False
    #: attach a body digest to every flight-recorder net send/deliver
    #: record (forces a sha256 per recorded message even under lazy
    #: hashing; opt-in so default dumps stay byte-identical to history)
    net_body_digests: bool = False
    #: record end-user operation SLO latencies (cheap sim-time histograms)
    slo: bool = True
    #: quantiles reported in metric histogram summaries and tables
    quantiles: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0)
    #: declarative SLO limits: op -> {"p95": limit_ms, ...}; empty means
    #: record but never judge
    slo_thresholds: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        if self.max_spans < 0:
            raise ValueError("max_spans must be >= 0")
        if self.flight_capacity < 1:
            raise ValueError("flight_capacity must be >= 1")
        if not self.quantiles:
            raise ValueError("quantiles must be non-empty")
        for q in self.quantiles:
            if not 0 <= q <= 100:
                raise ValueError(f"quantile out of range: {q}")
        for op, spec in self.slo_thresholds.items():
            for qname, limit in spec.items():
                if not qname.startswith("p"):
                    raise ValueError(
                        f"slo_thresholds[{op!r}]: quantile keys look like "
                        f"'p95', got {qname!r}"
                    )
                float(qname.lstrip("p"))  # must parse
                if limit < 0:
                    raise ValueError(
                        f"slo_thresholds[{op!r}][{qname!r}] must be >= 0"
                    )


class Telemetry:
    """Live telemetry: a metrics registry plus a tracer, one facade.

    ``clock`` supplies span timestamps -- wire it to the simulation
    kernel's virtual clock so traces are deterministic.
    """

    enabled = True

    def __init__(
        self,
        config: TelemetryConfig | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config or TelemetryConfig(enabled=True)
        self.metrics = MetricsRegistry(max_label_sets=self.config.max_label_sets)
        self.tracer = Tracer(clock=clock, max_spans=self.config.max_spans)
        self.flight: FlightRecorder | None = (
            FlightRecorder(capacity=self.config.flight_capacity, clock=clock)
            if self.config.flight
            else None
        )
        #: kernel callback profiler; the deployment installs it as
        #: ``kernel.profiler`` (the kernel stays telemetry-import-free)
        self.profiler: KernelProfiler | None = (
            KernelProfiler() if self.config.profile else None
        )
        #: end-user operation latency recorder (sim time, deterministic)
        self.slo: SLORecorder | None = (
            SLORecorder(clock=clock, thresholds=self.config.slo_thresholds)
            if self.config.slo
            else None
        )

    # -- metrics ----------------------------------------------------------

    def count(self, name: str, value: float = 1, **labels: object) -> None:
        self.metrics.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        self.metrics.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.metrics.observe(name, value, **labels)

    # -- flight recorder --------------------------------------------------

    def record(self, category: str, kind: str, **detail: object) -> None:
        """Append one structured event to the flight recorder (if kept)."""
        recorder = self.flight
        if recorder is not None:
            recorder.record(category, kind, **detail)

    # -- tracing ----------------------------------------------------------

    def span(self, name: str, **labels: object):
        if not self.config.trace:
            return NULL_SPAN
        return self.tracer.span(name, **labels)

    def wrap(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Kernel trace hook: bind a callback to the current span."""
        if not self.config.trace:
            return callback
        return self.tracer.wrap(callback)

    # -- export -----------------------------------------------------------

    def export(self, spans: bool = False, flight: bool = False) -> dict:
        """JSON-able snapshot; pass ``spans=True`` to include the trace
        forest and ``flight=True`` the flight-recorder timeline."""
        out = self.metrics.export(quantiles=self.config.quantiles)
        if spans:
            out["spans"] = self.tracer.span_tree()
        if flight and self.flight is not None:
            out["flight"] = {
                "total_recorded": self.flight.total_recorded,
                "evicted": self.flight.evicted,
                "events": self.flight.to_dicts(),
            }
        if self.slo is not None and self.slo.ops():
            out["slo"] = self.slo.summary()
        if self.profiler is not None and self.profiler.events_total:
            out["profile"] = self.profiler.snapshot()
        return out

    def render_spans(self, max_depth: int | None = None) -> str:
        return self.tracer.render(max_depth=max_depth)

    def reset(self) -> None:
        self.metrics.reset()
        self.tracer.reset()
        if self.flight is not None:
            self.flight.reset()
        if self.profiler is not None:
            self.profiler.reset()
        if self.slo is not None:
            self.slo.reset()

    @classmethod
    def from_config(
        cls,
        config: TelemetryConfig,
        clock: Callable[[], float] | None = None,
    ) -> "Telemetry | NullTelemetry":
        """The configured instance, or :data:`DISABLED` when off."""
        if not config.enabled:
            return DISABLED
        return cls(config, clock=clock)


__all__ = [
    "DISABLED",
    "FlightEvent",
    "FlightRecorder",
    "KernelProfiler",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullTelemetry",
    "OVERFLOW_KEY",
    "SLORecorder",
    "SLOViolation",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "coalesce",
    "flatten_name",
    "label_key",
]
