"""Flight recorder: a bounded, deterministic ring buffer of structured events.

Metrics (:mod:`repro.telemetry.metrics`) aggregate; spans
(:mod:`repro.telemetry.tracing`) explain one operation's latency.  The
flight recorder answers the third question a failing run poses: *what
happened, in order, just before things went wrong?*  Components record
structured events -- kernel schedule/fire, ``Network.send``/deliver with
fault-schedule outcomes, PBFT phase transitions and view changes,
dissemination pushes, archival encode/repair -- into one ring buffer
whose capacity bounds memory, so it can stay on for an entire chaos run
and still hold the causally ordered tail when an invariant breaks.

Determinism is a hard requirement: every field of every event derives
from simulated state (virtual clock, seeded RNG streams, qualified
callback names -- never ``repr`` with object addresses), so two runs
from the same master seed produce **byte-identical** dumps.  The chaos
harness relies on this: a failure dump from CI replays locally, line for
line.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable


def _fmt_value(value: object) -> str:
    """Deterministic compact rendering of one detail value.

    ``bytes`` become a short hex prefix (digests and GUID material are
    long and the prefix is what humans compare); everything else renders
    via ``str`` -- never ``repr`` of arbitrary objects, which leaks
    memory addresses and breaks byte-identical replay.
    """
    if isinstance(value, bytes):
        return value[:6].hex()
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True, slots=True)
class FlightEvent:
    """One structured event: when, where in the system, and the details.

    ``detail`` is a sorted tuple of ``(key, value)`` string pairs --
    hashable, order-stable, and already rendered, so a retained event can
    never mutate after the fact.
    """

    seq: int
    time_ms: float
    category: str
    kind: str
    detail: tuple[tuple[str, str], ...]

    def render(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.detail)
        line = f"{self.seq:>7} {self.time_ms:>12.1f}ms {self.category:<9} {self.kind:<14}"
        return f"{line} {parts}".rstrip()

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time_ms": self.time_ms,
            "category": self.category,
            "kind": self.kind,
            "detail": dict(self.detail),
        }


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightEvent`.

    Old events evict silently once ``capacity`` is reached (the evicted
    count is kept, so a dump states what it no longer holds).  Recording
    is cheap -- one clock read, one tuple build, one deque append -- and
    the disabled path lives one level up in
    :class:`repro.telemetry.NullTelemetry`.
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock if clock is not None else (lambda: 0.0)
        self._events: deque[FlightEvent] = deque(maxlen=capacity)
        #: events ever recorded (retained + evicted); also the next seq
        self.total_recorded = 0

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.total_recorded - len(self._events)

    def record(self, category: str, kind: str, **detail: object) -> None:
        event = FlightEvent(
            seq=self.total_recorded,
            time_ms=self.clock(),
            category=category,
            kind=kind,
            detail=tuple(sorted((k, _fmt_value(v)) for k, v in detail.items())),
        )
        self.total_recorded += 1
        self._events.append(event)

    def reset(self) -> None:
        self._events.clear()
        self.total_recorded = 0

    # -- reads -------------------------------------------------------------

    def events(
        self,
        categories: Iterable[str] | None = None,
        kinds: Iterable[str] | None = None,
    ) -> list[FlightEvent]:
        """Retained events in causal (record) order, optionally filtered."""
        cats = set(categories) if categories is not None else None
        knds = set(kinds) if kinds is not None else None
        return [
            e
            for e in self._events
            if (cats is None or e.category in cats)
            and (knds is None or e.kind in knds)
        ]

    def to_dicts(
        self, categories: Iterable[str] | None = None
    ) -> list[dict]:
        return [e.to_dict() for e in self.events(categories)]

    def categories(self) -> dict[str, int]:
        """Retained event count per category (dump header material)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return dict(sorted(counts.items()))

    # -- dumps -------------------------------------------------------------

    def render(
        self,
        categories: Iterable[str] | None = None,
        limit: int | None = None,
    ) -> str:
        """Causally ordered text timeline.

        ``limit`` keeps the last N matching events (the interesting tail
        of a failure); a header line states what was filtered or evicted
        so a truncated dump never masquerades as a complete one.
        """
        selected = self.events(categories)
        shown = selected if limit is None or limit >= len(selected) else selected[-limit:]
        header = (
            f"flight recorder: {len(shown)} of {len(selected)} matching events"
            f" ({self.total_recorded} recorded, {self.evicted} evicted)"
        )
        lines = [header]
        if len(shown) < len(selected):
            lines.append(f"... {len(selected) - len(shown)} earlier matching event(s) omitted")
        lines.extend(event.render() for event in shown)
        return "\n".join(lines)

    def digest(self) -> str:
        """sha256 over the full retained timeline; replay-comparison key."""
        hasher = hashlib.sha256()
        hasher.update(f"total={self.total_recorded};evicted={self.evicted}\n".encode())
        for event in self._events:
            hasher.update(event.render().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def dump_json(self, categories: Iterable[str] | None = None) -> str:
        """Machine-readable dump (stable key order)."""
        return json.dumps(
            {
                "total_recorded": self.total_recorded,
                "evicted": self.evicted,
                "events": self.to_dicts(categories),
            },
            indent=2,
            sort_keys=True,
        )


__all__ = ["FlightEvent", "FlightRecorder"]
