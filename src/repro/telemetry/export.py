"""Deterministic trace export: Chrome trace-event / Perfetto JSON.

Renders the tracer's causal spans and the flight recorder's structured
events into one `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON document that ``ui.perfetto.dev`` (or ``chrome://tracing``) opens
directly.  Spans become async-nestable ``b``/``e`` pairs keyed by span
id so causal parent/child relationships survive the export; flight
events become instants on their own track; timestamps are virtual
kernel milliseconds scaled to the format's microseconds.

Determinism is the contract: events sort by timestamp with a stable
tiebreak on recording order, keys are emitted sorted, floats derive only
from simulated state -- so two same-seed runs export **byte-identical**
JSON, and a chaos failure artifact from CI diffs cleanly against a
local replay.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.telemetry.flightrec import FlightEvent
from repro.telemetry.tracing import Span

#: fixed virtual process/thread ids: one process, spans and flight
#: events on separate tracks
PID = 1
TID_SPANS = 1
TID_FLIGHT = 2


def _ts_us(time_ms: float) -> int:
    """Virtual ms -> integer trace-event microseconds (deterministic)."""
    return round(time_ms * 1000.0)


def trace_events(
    spans: Iterable[Span],
    flight: Iterable[FlightEvent],
    process_name: str = "repro-sim",
) -> list[dict]:
    """The sorted trace-event list (metadata first, then the timeline)."""
    events: list[dict] = []
    for span in spans:
        args = {k: str(v) for k, v in sorted(span.labels.items())}
        events.append(
            {
                "ph": "b",
                "cat": "span",
                "id": span.span_id,
                "name": span.name,
                "pid": PID,
                "tid": TID_SPANS,
                "ts": _ts_us(span.start_ms),
                "args": args,
            }
        )
        if span.end_ms is not None:
            events.append(
                {
                    "ph": "e",
                    "cat": "span",
                    "id": span.span_id,
                    "name": span.name,
                    "pid": PID,
                    "tid": TID_SPANS,
                    "ts": _ts_us(span.end_ms),
                }
            )
    for event in flight:
        args = {k: v for k, v in event.detail}
        args["seq"] = str(event.seq)
        events.append(
            {
                "ph": "i",
                "s": "t",
                "cat": event.category,
                "name": f"{event.category}.{event.kind}",
                "pid": PID,
                "tid": TID_FLIGHT,
                "ts": _ts_us(event.time_ms),
                "args": args,
            }
        )
    # Stable sort: equal timestamps keep recording order, so the export
    # is a pure function of the (deterministic) inputs.
    events.sort(key=lambda e: e["ts"])
    metadata = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": PID,
            "tid": TID_SPANS,
            "ts": 0,
            "args": {"name": "spans"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": PID,
            "tid": TID_FLIGHT,
            "ts": 0,
            "args": {"name": "flight-recorder"},
        },
    ]
    return metadata + events


def perfetto_json(
    spans: Iterable[Span],
    flight: Iterable[FlightEvent],
    process_name: str = "repro-sim",
) -> str:
    """The complete export as a compact, byte-stable JSON string."""
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": trace_events(spans, flight, process_name=process_name),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def export_telemetry(telemetry, process_name: str = "repro-sim") -> str:
    """Export a live :class:`~repro.telemetry.Telemetry` facade's spans
    and flight timeline; empty-but-valid JSON when telemetry is off."""
    if telemetry is None or not telemetry.enabled:
        return perfetto_json((), (), process_name=process_name)
    flight = telemetry.flight.events() if telemetry.flight is not None else ()
    return perfetto_json(
        telemetry.tracer.spans, flight, process_name=process_name
    )


__all__ = ["export_telemetry", "perfetto_json", "trace_events"]
