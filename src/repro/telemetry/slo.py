"""Operation SLO recorder: what the end user actually experienced.

Metrics count protocol internals; spans explain one operation.  This
module records the *edge* latency of every end-user operation -- create,
update, read, degraded read -- in simulated milliseconds, bucketed by
operation plus labels (owning ring shard, degraded-read rung), and
judges the percentiles against declarative thresholds from
``TelemetryConfig.slo_thresholds``.

Synchronous operations record via :meth:`SLORecorder.observe`.  The
update path is asynchronous -- ``submit_update`` returns before PBFT
commits -- so it uses :meth:`begin`/:meth:`end` keyed by update id: the
clock starts at first submission (client retries keep the original
start, matching what a user waits through) and stops when the commit
certificate delivers, surviving cross-shard resolution and membership
handoffs because the update id, not the ring, is the key.

Everything is simulated time from the kernel clock, so same-seed runs
produce identical histograms; the chaos oracle can therefore gate on
"p95 read <= X under recovery" without flaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.stats import Distribution
from repro.telemetry.metrics import LabelKey, flatten_name, label_key

#: default summary quantiles (p50/p95/p99 -- the SLO vocabulary)
DEFAULT_QUANTILES: tuple[float, ...] = (50.0, 95.0, 99.0)


def quantile_name(q: float) -> str:
    """``p95`` for 95.0, ``p99.9`` for 99.9 -- stable key rendering."""
    if float(q).is_integer():
        return f"p{int(q)}"
    return f"p{q:g}"


@dataclass(frozen=True)
class SLOViolation:
    """One threshold the recorded distribution failed to meet."""

    op: str
    quantile: str
    limit_ms: float
    actual_ms: float
    count: int

    def describe(self) -> str:
        return (
            f"{self.op} {self.quantile}={self.actual_ms:.1f}ms exceeds "
            f"{self.limit_ms:.1f}ms (n={self.count})"
        )


class SLORecorder:
    """Per-operation sim-latency histograms plus threshold checking.

    ``thresholds`` maps operation name to ``{quantile: limit_ms}``,
    e.g. ``{"read": {"p95": 400.0}, "update": {"p99": 2500.0}}``.
    Checks run against the operation's aggregate distribution (all label
    sets merged), so a threshold covers every ring and rung at once.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        thresholds: dict[str, dict[str, float]] | None = None,
    ) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.thresholds: dict[str, dict[str, float]] = {
            op: dict(spec) for op, spec in (thresholds or {}).items()
        }
        self._dists: dict[str, dict[LabelKey, Distribution]] = {}
        #: open async operations: token -> (op, start_ms, labels)
        self._pending: dict[object, tuple[str, float, LabelKey]] = {}

    # -- recording ---------------------------------------------------------

    def observe(self, op: str, latency_ms: float, **labels: object) -> None:
        """Record one completed operation's simulated latency."""
        series = self._dists.setdefault(op, {})
        key = label_key(labels)
        dist = series.get(key)
        if dist is None:
            dist = series[key] = Distribution()
        dist.add(latency_ms)

    def begin(self, op: str, token: object, **labels: object) -> None:
        """Open an async operation.  A token already open keeps its
        original start time: a client's retry of the same update doesn't
        reset the latency the user has been waiting through."""
        if token in self._pending:
            return
        self._pending[token] = (op, self.clock(), label_key(labels))

    def end(self, token: object, **labels: object) -> float | None:
        """Close an async operation and record its latency; unknown
        tokens (duplicate commit delivery, SLO enabled mid-run) are
        ignored.  Extra labels merge over those given at begin."""
        entry = self._pending.pop(token, None)
        if entry is None:
            return None
        op, start_ms, begun = entry
        latency = self.clock() - start_ms
        merged = dict(begun)
        merged.update(label_key(labels))
        self.observe(op, latency, **merged)
        return latency

    def discard(self, token: object) -> None:
        self._pending.pop(token, None)

    @property
    def inflight(self) -> int:
        """Async operations begun but never ended (lost updates show up
        here, not as dishonestly fast samples)."""
        return len(self._pending)

    def reset(self) -> None:
        self._dists.clear()
        self._pending.clear()

    # -- reads -------------------------------------------------------------

    def histogram(self, op: str, **labels: object) -> Distribution | None:
        return self._dists.get(op, {}).get(label_key(labels))

    def aggregate(self, op: str) -> Distribution | None:
        """All samples for one operation, label sets merged."""
        series = self._dists.get(op)
        if not series:
            return None
        merged = Distribution()
        for dist in series.values():
            merged.extend(dist.samples)
        return merged

    def ops(self) -> list[str]:
        return sorted(self._dists)

    # -- reporting ---------------------------------------------------------

    def summary(
        self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES
    ) -> dict:
        """``{op{labels}: {count, mean, p50, ...}}`` -- JSON-able."""
        out: dict[str, dict[str, float]] = {}
        for op, series in sorted(self._dists.items()):
            for key, dist in sorted(series.items()):
                row: dict[str, float] = {
                    "count": float(dist.count),
                    "mean": dist.mean,
                    "min": dist.min,
                }
                for q in quantiles:
                    row[quantile_name(q)] = dist.percentile(q)
                row["max"] = dist.max
                out[flatten_name(op, key)] = row
        return out

    def check(
        self, thresholds: dict[str, dict[str, float]] | None = None
    ) -> list[SLOViolation]:
        """Judge recorded latencies against thresholds (the configured
        ones by default).  Operations with no samples are not violations
        -- absence is a liveness question, answered elsewhere."""
        spec = thresholds if thresholds is not None else self.thresholds
        violations: list[SLOViolation] = []
        for op in sorted(spec):
            dist = self.aggregate(op)
            if dist is None:
                continue
            for qname in sorted(spec[op]):
                limit = spec[op][qname]
                q = float(qname.lstrip("p"))
                actual = dist.percentile(q)
                if actual > limit:
                    violations.append(
                        SLOViolation(
                            op=op,
                            quantile=qname,
                            limit_ms=limit,
                            actual_ms=actual,
                            count=dist.count,
                        )
                    )
        return violations

    def render(
        self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES
    ) -> str:
        """Text report: one row per op/label set, then threshold verdicts."""
        summary = self.summary(quantiles)
        if not summary and not self._pending:
            return "no operations recorded"
        lines = []
        if summary:
            width = max(len(name) for name in summary)
            qnames = [quantile_name(q) for q in quantiles]
            header = f"  {'operation':<{width}}  {'count':>6}  " + "  ".join(
                f"{q:>8}" for q in ["mean", *qnames, "max"]
            )
            lines.append(header)
            for name, row in summary.items():
                cells = "  ".join(
                    f"{row[q]:>8.1f}" for q in ["mean", *qnames, "max"]
                )
                lines.append(
                    f"  {name:<{width}}  {int(row['count']):>6}  {cells}"
                )
        if self._pending:
            lines.append(f"  inflight (begun, never completed): {self.inflight}")
        if self.thresholds:
            violations = self.check()
            if violations:
                lines.append("SLO violations:")
                lines.extend(f"  FAIL  {v.describe()}" for v in violations)
            else:
                lines.append("SLO thresholds: all met")
        return "\n".join(lines)


__all__ = ["DEFAULT_QUANTILES", "SLORecorder", "SLOViolation", "quantile_name"]
