"""From-scratch RSA signatures.

OceanStore requires that "all writes be signed so that well-behaved
servers and clients can verify them against an access control list"
(Section 4.2), that server GUIDs be hashes of public keys, and that the
primary tier sign serialization results (Section 4.4.3).  No external
crypto library is available offline, so we implement textbook RSA with
Miller-Rabin key generation and full-domain-hash signing.

Key sizes default to 512 bits: generation must be fast enough to mint
hundreds of identities inside tests, and the experiments measure
architecture behaviour, not cryptographic strength.  The implementation is
real (keys actually sign and verify; forgeries fail), just short.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashes import sha256

_MILLER_RABIN_ROUNDS = 24

#: memoized signature checks (pure function of key + message + signature);
#: cleared wholesale at the cap -- simpler than LRU and the working set
#: of any one simulation is far below it
_VERIFY_CACHE: dict[tuple[int, int, bytes, bytes], bool] = {}
_VERIFY_CACHE_CAP = 8192

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
]


def _is_probable_prime(n: int, rng: random.Random) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True, slots=True)
class PublicKey:
    n: int
    e: int

    def to_bytes(self) -> bytes:
        n_bytes = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        e_bytes = self.e.to_bytes((self.e.bit_length() + 7) // 8, "big")
        return len(n_bytes).to_bytes(4, "big") + n_bytes + e_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        """Inverse of :meth:`to_bytes` (wire decoding of signer keys)."""
        if len(data) < 6:
            raise ValueError("truncated public key")
        n_len = int.from_bytes(data[:4], "big")
        if len(data) < 4 + n_len + 1:
            raise ValueError("truncated public key modulus")
        n = int.from_bytes(data[4 : 4 + n_len], "big")
        e = int.from_bytes(data[4 + n_len :], "big")
        if n <= 0 or e <= 0:
            raise ValueError("degenerate public key")
        return cls(n=n, e=e)

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a full-domain-hash RSA signature.  Never raises on bad input.

        Results are memoized process-wide: verification is a pure
        function of ``(n, e, message, signature)``, and PBFT re-verifies
        the same share or client signature at every replica that receives
        it -- one modular exponentiation instead of n.
        """
        key = (self.n, self.e, message, signature)
        cached = _VERIFY_CACHE.get(key)
        if cached is not None:
            return cached
        sig_int = int.from_bytes(signature, "big")
        if not 0 < sig_int < self.n:
            result = False
        else:
            result = pow(sig_int, self.e, self.n) == _fdh(message, self.n)
        if len(_VERIFY_CACHE) >= _VERIFY_CACHE_CAP:
            _VERIFY_CACHE.clear()
        _VERIFY_CACHE[key] = result
        return result


@dataclass(frozen=True, slots=True)
class PrivateKey:
    n: int
    d: int
    public: PublicKey

    def sign(self, message: bytes) -> bytes:
        digest_int = _fdh(message, self.n)
        sig_int = pow(digest_int, self.d, self.n)
        return sig_int.to_bytes((self.n.bit_length() + 7) // 8, "big")


def _fdh(message: bytes, modulus: int) -> int:
    """Full-domain hash: expand SHA-256 to just below the modulus width."""
    target_bytes = (modulus.bit_length() - 1) // 8
    material = b""
    counter = 0
    while len(material) < target_bytes:
        material += sha256(message + counter.to_bytes(4, "big"))
        counter += 1
    return int.from_bytes(material[:target_bytes], "big")


def generate_keypair(rng: random.Random, bits: int = 512) -> PrivateKey:
    """Generate an RSA keypair deterministically from ``rng``."""
    if bits < 128:
        raise ValueError("modulus too small to be meaningful")
    e = 65537
    while True:
        p = _random_prime(bits // 2, rng)
        q = _random_prime(bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        public = PublicKey(n=n, e=e)
        return PrivateKey(n=n, d=d, public=public)
