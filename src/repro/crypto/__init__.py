"""Cryptographic substrate, built from scratch on ``hashlib``.

Everything OceanStore's untrusted-infrastructure model needs: secure
hashes (:mod:`~repro.crypto.hashes`), a position-dependent block cipher
(:mod:`~repro.crypto.blockcipher`), RSA signatures
(:mod:`~repro.crypto.rsa`), Merkle trees for self-verifying fragments
(:mod:`~repro.crypto.merkle`), searchable encryption
(:mod:`~repro.crypto.searchable`), and key management
(:mod:`~repro.crypto.keys`).
"""

from repro.crypto.blockcipher import BLOCK_SIZE, PositionDependentCipher
from repro.crypto.hashes import derive_key, hmac_sha256, sha1, sha256
from repro.crypto.keys import KeyRing, ObjectKey, Principal, make_principal
from repro.crypto.merkle import MerkleProof, MerkleTree, verify_proof
from repro.crypto.rsa import PrivateKey, PublicKey, generate_keypair
from repro.crypto.searchable import (
    SearchableCipher,
    SearchMatch,
    SearchTrapdoor,
    server_search,
)

__all__ = [
    "BLOCK_SIZE",
    "KeyRing",
    "MerkleProof",
    "MerkleTree",
    "ObjectKey",
    "PositionDependentCipher",
    "Principal",
    "PrivateKey",
    "PublicKey",
    "SearchMatch",
    "SearchTrapdoor",
    "SearchableCipher",
    "derive_key",
    "generate_keypair",
    "hmac_sha256",
    "make_principal",
    "server_search",
    "sha1",
    "sha256",
    "verify_proof",
]
