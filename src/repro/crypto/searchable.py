"""Search over ciphertext, after Song, Wagner & Perrig [47].

Section 4.4.2: "Perhaps the most impressive of these predicates is search,
which can be performed directly on ciphertext; this operation reveals only
that a search was performed along with the boolean result.  The cleartext
of the search string is not revealed, nor can the server initiate new
searches on its own."

The scheme (SWP's final variant, which supports decryption):

* Words are padded to a fixed cell width and deterministically encrypted
  with a keyed Feistel permutation: ``X = E(W)``, split as ``X = L || R``.
* A per-word key is derived from the *left* part only:
  ``k = PRF(trapdoor_key, L)``.
* Cell ``i`` stores ``X XOR (S_i || F_k(S_i))`` where ``S_i`` is a
  pseudo-random stream value for position ``i``.

To search for ``W``, the client reveals the trapdoor ``(E(W), k)``.  The
server XORs each cell with ``E(W)``; on a match the result is
``S_i || F_k(S_i)``, which it can verify with ``k`` alone.  The server
learns match positions but not the word, and cannot fabricate trapdoors.
The key holder can decrypt: ``S_i`` recovers ``L``, ``L`` yields ``k``,
``k`` unmasks ``R``, and the Feistel permutation inverts ``X`` to ``W``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import derive_key, hmac_sha256

#: Width of an encrypted word cell in bytes (words are padded/truncated).
WORD_BYTES = 24
#: Width of the verifiable check part (the Feistel right half / PRF tag).
CHECK_BYTES = 8
#: Width of the stream part.
LEFT_BYTES = WORD_BYTES - CHECK_BYTES

_FEISTEL_ROUNDS = 4


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class _FeistelPermutation:
    """Keyed, invertible permutation on WORD_BYTES-byte blocks.

    An unbalanced Feistel network: the block splits as (LEFT_BYTES,
    CHECK_BYTES); each round mixes one half with a PRF of the other.
    Four rounds of an unbalanced network keyed by independent round keys
    give a deterministic PRP adequate for the simulation.
    """

    def __init__(self, key: bytes) -> None:
        self._round_keys = [
            derive_key(key, f"feistel-round-{i}") for i in range(_FEISTEL_ROUNDS)
        ]

    def _round_fn(self, round_index: int, data: bytes, width: int) -> bytes:
        return hmac_sha256(self._round_keys[round_index], data)[:width]

    def forward(self, block: bytes) -> bytes:
        if len(block) != WORD_BYTES:
            raise ValueError("Feistel block must be WORD_BYTES long")
        left, right = block[:LEFT_BYTES], block[LEFT_BYTES:]
        for i in range(_FEISTEL_ROUNDS):
            if i % 2 == 0:
                right = _xor(right, self._round_fn(i, left, CHECK_BYTES))
            else:
                left = _xor(left, self._round_fn(i, right, LEFT_BYTES))
        return left + right

    def inverse(self, block: bytes) -> bytes:
        if len(block) != WORD_BYTES:
            raise ValueError("Feistel block must be WORD_BYTES long")
        left, right = block[:LEFT_BYTES], block[LEFT_BYTES:]
        for i in reversed(range(_FEISTEL_ROUNDS)):
            if i % 2 == 0:
                right = _xor(right, self._round_fn(i, left, CHECK_BYTES))
            else:
                left = _xor(left, self._round_fn(i, right, LEFT_BYTES))
        return left + right


@dataclass(frozen=True, slots=True)
class SearchTrapdoor:
    """What the client reveals to let servers test for one specific word."""

    encrypted_word: bytes
    word_key: bytes


@dataclass(frozen=True, slots=True)
class SearchMatch:
    position: int


class SearchableCipher:
    """Encrypts word streams so servers can test membership via trapdoors."""

    def __init__(self, master_key: bytes) -> None:
        if len(master_key) < 16:
            raise ValueError("master key must be at least 16 bytes")
        self._permutation = _FeistelPermutation(derive_key(master_key, "feistel"))
        self._stream_key = derive_key(master_key, "stream")
        self._trapdoor_key = derive_key(master_key, "trapdoor")

    # -- internal pieces ---------------------------------------------------

    def _pad(self, word: str) -> bytes:
        raw = word.encode("utf-8")
        if len(raw) > WORD_BYTES:
            raise ValueError(f"word too long for cell: {word!r}")
        return raw + b"\x00" * (WORD_BYTES - len(raw))

    def _unpad(self, padded: bytes) -> str:
        return padded.rstrip(b"\x00").decode("utf-8")

    def _stream_value(self, position: int) -> bytes:
        return hmac_sha256(self._stream_key, position.to_bytes(8, "big"))[:LEFT_BYTES]

    def _word_key(self, encrypted_left: bytes) -> bytes:
        return hmac_sha256(self._trapdoor_key, encrypted_left)

    # -- client-side API ---------------------------------------------------

    def encrypt_words(self, words: list[str], base_position: int = 0) -> list[bytes]:
        """Encrypt a word stream into fixed-width searchable cells."""
        cells = []
        for offset, word in enumerate(words):
            position = base_position + offset
            x = self._permutation.forward(self._pad(word))
            left, right = x[:LEFT_BYTES], x[LEFT_BYTES:]
            s = self._stream_value(position)
            k = self._word_key(left)
            tag = hmac_sha256(k, s)[:CHECK_BYTES]
            cells.append(_xor(left, s) + _xor(right, tag))
        return cells

    def decrypt_words(self, cells: list[bytes], base_position: int = 0) -> list[str]:
        """Recover plaintext words (requires full key material)."""
        words = []
        for offset, cell in enumerate(cells):
            if len(cell) != WORD_BYTES:
                raise ValueError("malformed search cell")
            position = base_position + offset
            s = self._stream_value(position)
            left = _xor(cell[:LEFT_BYTES], s)
            k = self._word_key(left)
            tag = hmac_sha256(k, s)[:CHECK_BYTES]
            right = _xor(cell[LEFT_BYTES:], tag)
            words.append(self._unpad(self._permutation.inverse(left + right)))
        return words

    def trapdoor(self, word: str) -> SearchTrapdoor:
        """Build the search trapdoor for ``word``."""
        x = self._permutation.forward(self._pad(word))
        return SearchTrapdoor(
            encrypted_word=x, word_key=self._word_key(x[:LEFT_BYTES])
        )


def server_search(cells: list[bytes], trapdoor: SearchTrapdoor) -> list[SearchMatch]:
    """Server-side search using only the trapdoor (no keys).

    XOR each cell with the candidate encrypted word; a true match leaves
    ``S || F_k(S)``, verifiable with the trapdoor's word key.
    """
    matches = []
    for position, cell in enumerate(cells):
        if len(cell) != len(trapdoor.encrypted_word):
            continue
        pad = _xor(cell, trapdoor.encrypted_word)
        s, tag = pad[:LEFT_BYTES], pad[LEFT_BYTES:]
        expected = hmac_sha256(trapdoor.word_key, s)[:CHECK_BYTES]
        if tag == expected:
            matches.append(SearchMatch(position=position))
    return matches
