"""Key management: principals, keyrings, and read-key distribution.

Section 4.2 restricts readers by encrypting data and distributing the key
to authorized readers, and notes each user "might have more than one
public key ... different public keys for private objects, public objects,
and objects shared with various groups" (fn. 4).  This module provides:

* :class:`Principal` -- a user or server identity (RSA keypair + GUID).
* :class:`KeyRing` -- the client-side store of signing keys and object
  read keys.
* Read-key revocation by re-encryption: generating a new object key and
  recording the key generation so stale replicas are detectable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashes import derive_key
from repro.crypto.rsa import PrivateKey, PublicKey, generate_keypair
from repro.util.ids import GUID


@dataclass(frozen=True, slots=True)
class Principal:
    """An identity in the system: a human user or a server.

    The GUID of a principal is the secure hash of its public key
    (Section 4.1), which makes identities self-certifying: anyone holding
    the public key can check it against the GUID with no authority.
    """

    name: str
    private_key: PrivateKey

    @property
    def public_key(self) -> PublicKey:
        return self.private_key.public

    @property
    def guid(self) -> GUID:
        return GUID.hash_of(self.public_key.to_bytes())

    def sign(self, message: bytes) -> bytes:
        return self.private_key.sign(message)


def make_principal(name: str, rng: random.Random, bits: int = 512) -> Principal:
    """Mint a principal with a fresh deterministic keypair."""
    return Principal(name=name, private_key=generate_keypair(rng, bits=bits))


@dataclass(frozen=True, slots=True)
class ObjectKey:
    """Symmetric read key for one object, versioned by generation.

    Revoking a reader mints generation ``g+1`` and requests re-encryption
    of replicas (Section 4.2); readers holding only generation ``g`` can
    still read *old* cached data -- the paper is explicit that this
    residual exposure is unavoidable.
    """

    object_guid: GUID
    generation: int
    key: bytes

    def subkey(self, label: str) -> bytes:
        """Derive a purpose-specific key (block cipher, search) from this key."""
        return derive_key(self.key, label)


class KeyRing:
    """Client-side key store: identity plus per-object read keys."""

    def __init__(self, principal: Principal, rng: random.Random) -> None:
        self.principal = principal
        self._rng = rng
        self._object_keys: dict[GUID, ObjectKey] = {}

    def create_object_key(self, object_guid: GUID) -> ObjectKey:
        """Mint generation-0 key for a new object."""
        key = self._fresh_key()
        object_key = ObjectKey(object_guid=object_guid, generation=0, key=key)
        self._object_keys[object_guid] = object_key
        return object_key

    def grant(self, object_key: ObjectKey) -> None:
        """Install a key received from the object's owner (read grant).

        A newer generation always supersedes an older one; an older
        generation is ignored (it only decrypts stale data).
        """
        existing = self._object_keys.get(object_key.object_guid)
        if existing is None or object_key.generation > existing.generation:
            self._object_keys[object_key.object_guid] = object_key

    def revoke_and_rekey(self, object_guid: GUID) -> ObjectKey:
        """Revoke readers by minting the next key generation.

        The owner distributes the new key to the remaining readers and
        asks replicas to re-encrypt (Section 4.2).
        """
        existing = self._object_keys.get(object_guid)
        if existing is None:
            raise KeyError(f"no key for object {object_guid}")
        replacement = ObjectKey(
            object_guid=object_guid,
            generation=existing.generation + 1,
            key=self._fresh_key(),
        )
        self._object_keys[object_guid] = replacement
        return replacement

    def key_for(self, object_guid: GUID) -> ObjectKey:
        try:
            return self._object_keys[object_guid]
        except KeyError:
            raise KeyError(f"no read key for object {object_guid}") from None

    def has_key(self, object_guid: GUID) -> bool:
        return object_guid in self._object_keys

    def _fresh_key(self) -> bytes:
        return self._rng.getrandbits(256).to_bytes(32, "big")
