"""Hash primitives used throughout the system.

The OceanStore prototype uses SHA-1 as its secure hash (Section 4.1).  We
keep SHA-1 for GUID derivation (width fidelity with the paper) and use
SHA-256 wherever we need keyed derivation or keystream material, since the
architecture does not depend on the hash width there.
"""

from __future__ import annotations

import hashlib
import hmac


def sha1(data: bytes) -> bytes:
    """20-byte SHA-1 digest (the paper's secure hash)."""
    return hashlib.sha1(data).digest()


def sha256(data: bytes) -> bytes:
    """32-byte SHA-256 digest."""
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """Keyed MAC; used by the searchable-encryption scheme."""
    return hmac.new(key, data, hashlib.sha256).digest()


def derive_key(master: bytes, label: str, length: int = 32) -> bytes:
    """Simple HKDF-like expansion: derive a sub-key from a master secret.

    Counter-mode expansion with HMAC-SHA256; enough structure for the
    simulation's key hierarchy (object keys, search keys, block-cipher
    keys) without an external dependency.
    """
    if length <= 0:
        raise ValueError(f"key length must be positive: {length}")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        counter += 1
        blocks.append(
            hmac_sha256(master, label.encode("utf-8") + counter.to_bytes(4, "big"))
        )
    return b"".join(blocks)[:length]
