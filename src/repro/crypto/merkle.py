"""Binary Merkle trees for self-verifying archival fragments.

Section 4.5: "we use a hierarchical hashing method to verify each
fragment.  We generate a hash over each fragment, and recursively hash
over the concatenation of pairs of hashes to form a binary tree.  Each
fragment is stored along with the hashes neighboring its path to the root
... the top-most hash [serves] as the GUID to the immutable archival
object, making every fragment in the archive completely self-verifying."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf_hash(data: bytes) -> bytes:
    return sha256(_LEAF_PREFIX + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True, slots=True)
class MerkleProof:
    """Sibling hashes along one leaf's path to the root.

    ``path`` lists (sibling_hash, sibling_is_right) pairs from the leaf
    upward.  Stored alongside each archival fragment so that any machine
    can verify it against the archival GUID with no other context.
    """

    leaf_index: int
    path: tuple[tuple[bytes, bool], ...]

    def size_bytes(self) -> int:
        """Wire size of the proof (for fragment overhead accounting)."""
        return 8 + sum(len(h) + 1 for h, _ in self.path)


class MerkleTree:
    """Merkle tree over a fixed list of leaf payloads.

    Odd nodes at any level are promoted unchanged (Bitcoin-style
    duplication would allow a malleability quirk; promotion does not).
    """

    def __init__(self, leaves: list[bytes]) -> None:
        if not leaves:
            raise ValueError("Merkle tree requires at least one leaf")
        self._leaf_hashes = [_leaf_hash(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = [self._leaf_hashes]
        current = self._leaf_hashes
        while len(current) > 1:
            next_level = []
            for i in range(0, len(current) - 1, 2):
                next_level.append(_node_hash(current[i], current[i + 1]))
            if len(current) % 2 == 1:
                next_level.append(current[-1])
            self._levels.append(next_level)
            current = next_level

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_hashes)

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for leaf ``index``."""
        if not 0 <= index < self.leaf_count:
            raise IndexError(f"leaf index out of range: {index}")
        path: list[tuple[bytes, bool]] = []
        i = index
        for level in self._levels[:-1]:
            if i % 2 == 0:
                sibling_index = i + 1
                sibling_is_right = True
            else:
                sibling_index = i - 1
                sibling_is_right = False
            if sibling_index < len(level):
                path.append((level[sibling_index], sibling_is_right))
            # If there is no sibling (odd promotion), the node carries up
            # unchanged and contributes nothing to the proof.
            i //= 2
        return MerkleProof(leaf_index=index, path=tuple(path))


def verify_proof(leaf_data: bytes, proof: MerkleProof, root: bytes) -> bool:
    """Check that ``leaf_data`` is the leaf the proof commits to under ``root``."""
    current = _leaf_hash(leaf_data)
    for sibling, sibling_is_right in proof.path:
        if sibling_is_right:
            current = _node_hash(current, sibling)
        else:
            current = _node_hash(sibling, current)
    return current == root
