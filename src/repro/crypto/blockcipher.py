"""Position-dependent block cipher.

Section 4.4.2 requires "a position-dependent block cipher": the ciphertext
of a block depends on both the block contents and its position, so that a
client can prove a *compare-block* predicate by hashing the ciphertext at a
given position, and servers can execute *replace-block* and *append*
without learning plaintext.

We implement a counter-mode stream cipher keyed per (object key, block
position): keystream blocks come from SHA-256 over (key, position,
counter).  This has the two properties the update model needs:

* deterministic: the same plaintext at the same position under the same
  key always yields the same ciphertext (so compare-block via ciphertext
  hash works);
* position-dependent: the same plaintext at different positions encrypts
  differently (so servers cannot correlate equal blocks across positions).

This is a simulation-grade cipher, not an audited construction; the
architecture experiments only need its interface and determinism.
"""

from __future__ import annotations

from repro.crypto.hashes import sha256

#: Fixed block size used by the data model (bytes).  Real systems would
#: tune this; 4 KiB matches the paper's discussion of ~4 kB updates.
BLOCK_SIZE = 4096


class PositionDependentCipher:
    """Encrypts/decrypts fixed-position blocks under a symmetric key."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = key

    def _keystream(self, position: int, length: int) -> bytes:
        """Keystream for a block at logical ``position``."""
        chunks = []
        counter = 0
        while sum(len(c) for c in chunks) < length:
            material = (
                self._key
                + position.to_bytes(8, "big")
                + counter.to_bytes(8, "big")
            )
            chunks.append(sha256(material))
            counter += 1
        return b"".join(chunks)[:length]

    def encrypt_block(self, position: int, plaintext: bytes) -> bytes:
        """Encrypt one block at ``position``.

        ``position`` is the block's *stable identity* (its block id), not
        its current index in the object; insert/delete reorganize indexes
        without re-encrypting (Figure 4).
        """
        if position < 0:
            raise ValueError(f"negative block position: {position}")
        stream = self._keystream(position, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    def decrypt_block(self, position: int, ciphertext: bytes) -> bytes:
        """Decryption is the same XOR under the same keystream."""
        return self.encrypt_block(position, ciphertext)

    def ciphertext_hash(self, ciphertext: bytes) -> bytes:
        """Hash of a ciphertext block, used by the compare-block predicate.

        The client computes this locally over its expected ciphertext and
        submits it; any replica can recompute it over stored ciphertext
        without any key material (Section 4.4.2).
        """
        return sha256(ciphertext)
